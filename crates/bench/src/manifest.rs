//! Crash-safe campaign manifest: `results/MANIFEST.json`.
//!
//! `repro all --out D` records every completed experiment here — its
//! output files and their content hashes — updating the manifest
//! atomically (write to a temp file, then rename) after *each*
//! experiment finishes. A later `repro all --resume --out D` skips any
//! experiment whose manifest entry still verifies against the files on
//! disk, so a campaign killed at experiment 23 of 40 restarts at 23,
//! and the resumed run's `results/` is byte-identical to an
//! uninterrupted one (experiments are independent and deterministic).
//!
//! The format is a small hand-written JSON subset (this repository
//! vendors no JSON dependency): one object keyed by experiment id, each
//! entry listing `{path, hash}` records. Hashes are 64-bit FNV-1a over
//! the file bytes — collision resistance is irrelevant here; the hash
//! only needs to catch truncated or hand-edited outputs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Manifest file name inside the output directory.
pub const FILE_NAME: &str = "MANIFEST.json";

/// One output file of a completed experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecord {
    /// File name relative to the output directory.
    pub path: String,
    /// `fnv1a:<16 hex digits>` over the file contents.
    pub hash: String,
}

/// All completed experiments, keyed by experiment id. `BTreeMap` keeps
/// the serialised form stable regardless of completion order, so a
/// parallel campaign and a serial one write identical manifests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// The campaign configuration this manifest belongs to (quick flag,
    /// protocol override). Resuming under a different configuration
    /// must not reuse these entries.
    pub config: String,
    /// Completed experiments and their output files.
    pub entries: BTreeMap<String, Vec<FileRecord>>,
}

/// 64-bit FNV-1a of `bytes`, rendered as `fnv1a:<hex>`.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a:{h:016x}")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Manifest {
    /// A fresh manifest for a campaign configuration.
    pub fn new(config: &str) -> Self {
        Manifest {
            config: config.to_string(),
            entries: BTreeMap::new(),
        }
    }

    /// Serialise to the JSON subset this module reads back.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"config\": \"{}\",", json_escape(&self.config));
        s.push_str("  \"experiments\": {\n");
        let total = self.entries.len();
        for (i, (id, files)) in self.entries.iter().enumerate() {
            let _ = write!(s, "    \"{}\": [", json_escape(id));
            for (j, f) in files.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{{\"path\": \"{}\", \"hash\": \"{}\"}}",
                    if j == 0 { "" } else { ", " },
                    json_escape(&f.path),
                    json_escape(&f.hash)
                );
            }
            let _ = writeln!(s, "]{}", if i + 1 == total { "" } else { "," });
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Parse a manifest previously written by [`Manifest::to_json`].
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = parse_json(text)?;
        let top = v.as_object().ok_or("manifest root is not an object")?;
        let config = top
            .field("config")
            .and_then(Json::as_str)
            .ok_or("manifest missing \"config\"")?
            .to_string();
        let exps = top
            .field("experiments")
            .and_then(Json::as_object)
            .ok_or("manifest missing \"experiments\"")?;
        let mut entries = BTreeMap::new();
        for (id, files) in exps {
            let arr = files
                .as_array()
                .ok_or_else(|| format!("entry '{id}' is not an array"))?;
            let mut records = Vec::with_capacity(arr.len());
            for f in arr {
                let o = f
                    .as_object()
                    .ok_or_else(|| format!("file record in '{id}' is not an object"))?;
                let get = |k: &str| -> Result<String, String> {
                    o.field(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("file record in '{id}' missing \"{k}\""))
                };
                records.push(FileRecord {
                    path: get("path")?,
                    hash: get("hash")?,
                });
            }
            entries.insert(id.clone(), records);
        }
        Ok(Manifest { config, entries })
    }

    /// Load the manifest from `dir`, if one exists and parses. A stale
    /// temp file from an interrupted save is deleted on the way.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, String> {
        let _ = fs::remove_file(dir.join(format!("{FILE_NAME}.tmp")));
        let path = dir.join(FILE_NAME);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        Manifest::from_json(&text)
            .map(Some)
            .map_err(|e| format!("parsing {}: {e}", path.display()))
    }

    /// Atomically write the manifest into `dir` (temp file + rename), so
    /// a kill mid-save leaves either the old manifest or the new one,
    /// never a torn file.
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let tmp = dir.join(format!("{FILE_NAME}.tmp"));
        let dst = dir.join(FILE_NAME);
        fs::write(&tmp, self.to_json()).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &dst)
            .map_err(|e| format!("renaming {} to {}: {e}", tmp.display(), dst.display()))
    }

    /// Whether experiment `id` completed earlier *and* its recorded
    /// outputs are still intact on disk (every file present with a
    /// matching hash).
    pub fn verified_complete(&self, dir: &Path, id: &str) -> bool {
        let Some(files) = self.entries.get(id) else {
            return false;
        };
        !files.is_empty()
            && files.iter().all(|f| {
                fs::read(dir.join(&f.path))
                    .map(|bytes| fnv1a_hex(&bytes) == f.hash)
                    .unwrap_or(false)
            })
    }
}

// --- minimal JSON subset parser (objects, arrays, strings) ---

#[derive(Debug)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

trait ObjectExt {
    fn field(&self, key: &str) -> Option<&Json>;
}

impl ObjectExt for [(String, Json)] {
    fn field(&self, key: &str) -> Option<&Json> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(&c) => Err(format!("unexpected '{}' at byte {}", c as char, *pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("unknown escape '\\{}'", other as char)),
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences verbatim.
                let start = *pos - 1;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("quick=false,protocol=native,plots=true");
        m.entries.insert(
            "fig1-e5".into(),
            vec![
                FileRecord {
                    path: "fig1-e5.tsv".into(),
                    hash: fnv1a_hex(b"data"),
                },
                FileRecord {
                    path: "fig1-e5.gp".into(),
                    hash: fnv1a_hex(b"plot"),
                },
            ],
        );
        m.entries.insert(
            "table1".into(),
            vec![FileRecord {
                path: "table1.tsv".into(),
                hash: fnv1a_hex(b"t1"),
            }],
        );
        m
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let m = sample();
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        // Stable serialisation: BTreeMap ordering, not insertion order.
        assert_eq!(parsed.to_json(), m.to_json());
    }

    #[test]
    fn escaping_survives_roundtrip() {
        let mut m = Manifest::new("cfg with \"quotes\" and \\slash\\ and\nnewline");
        m.entries.insert(
            "id \"x\"".into(),
            vec![FileRecord {
                path: "weird \u{1} name — dash".into(),
                hash: "fnv1a:0".into(),
            }],
        );
        let parsed = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn save_load_roundtrip_and_stale_tmp_cleanup() {
        let dir = std::env::temp_dir().join(format!("manifest-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let m = sample();
        m.save(&dir).unwrap();
        // Simulate a kill mid-save: a stale tmp file lying around.
        fs::write(dir.join(format!("{FILE_NAME}.tmp")), "{torn").unwrap();
        let loaded = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, m);
        assert!(!dir.join(format!("{FILE_NAME}.tmp")).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_none() {
        let dir = std::env::temp_dir().join(format!("manifest-miss-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(Manifest::load(&dir).unwrap(), None);
    }

    #[test]
    fn load_corrupt_manifest_is_error() {
        let dir = std::env::temp_dir().join(format!("manifest-bad-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(FILE_NAME), "{\"config\": \"x\"").unwrap();
        assert!(Manifest::load(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verified_complete_checks_presence_and_hash() {
        let dir = std::env::temp_dir().join(format!("manifest-verify-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.tsv"), b"alpha").unwrap();
        let mut m = Manifest::new("cfg");
        m.entries.insert(
            "a".into(),
            vec![FileRecord {
                path: "a.tsv".into(),
                hash: fnv1a_hex(b"alpha"),
            }],
        );
        m.entries.insert(
            "gone".into(),
            vec![FileRecord {
                path: "gone.tsv".into(),
                hash: fnv1a_hex(b"x"),
            }],
        );
        m.entries.insert("empty".into(), Vec::new());
        assert!(m.verified_complete(&dir, "a"));
        assert!(!m.verified_complete(&dir, "gone"), "missing file");
        assert!(!m.verified_complete(&dir, "empty"), "no recorded files");
        assert!(!m.verified_complete(&dir, "never-ran"));
        // Vandalised output: hash mismatch invalidates the entry.
        fs::write(dir.join("a.tsv"), b"tampered").unwrap();
        assert!(!m.verified_complete(&dir, "a"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv1a_known_values() {
        // FNV-1a test vectors (64-bit).
        assert_eq!(fnv1a_hex(b""), "fnv1a:cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), "fnv1a:af63dc4c8601ec8c");
        assert_ne!(fnv1a_hex(b"ab"), fnv1a_hex(b"ba"), "order sensitive");
    }
}
