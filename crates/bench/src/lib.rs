//! Benchmark support: shared helpers for the Criterion benches and the
//! `repro` binary that regenerates every table and figure of the
//! evaluation.

#![warn(missing_docs)]

pub mod bench_json;
#[cfg(feature = "conform")]
pub mod conform;
pub mod manifest;

use bounce_harness::report::Table;
use manifest::{fnv1a_hex, FileRecord};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Write a table as TSV under `dir/<id>.tsv`, creating the directory.
pub fn write_tsv(dir: &Path, id: &str, table: &Table) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut f = fs::File::create(dir.join(format!("{id}.tsv")))?;
    f.write_all(table.to_tsv().as_bytes())
}

/// Emit a gnuplot script that plots a TSV written by [`write_tsv`]:
/// first column on the x axis, every numeric column as a series, PNG
/// output next to the data.
pub fn gnuplot_script(id: &str, table: &Table) -> String {
    let mut s = String::new();
    s.push_str("set terminal pngcairo size 900,540 enhanced\n");
    s.push_str(&format!("set output '{id}.png'\n"));
    s.push_str(&format!(
        "set title \"{}\" noenhanced\n",
        table.title.replace('"', "'")
    ));
    s.push_str(&format!(
        "set xlabel '{}'\nset key outside right\nset grid\n",
        table.headers.first().map(String::as_str).unwrap_or("x")
    ));
    s.push_str("set datafile commentschars '#'\n");
    let mut plots = Vec::new();
    for (i, h) in table.headers.iter().enumerate().skip(1) {
        // Plot only columns whose first row parses as a number.
        let numeric = table
            .rows
            .first()
            .map(|r| r[i].parse::<f64>().is_ok())
            .unwrap_or(false);
        if numeric {
            plots.push(format!(
                "'{id}.tsv' using 1:{} skip 1 with linespoints title '{}' noenhanced",
                i + 1,
                h.replace('\'', "")
            ));
        }
    }
    if plots.is_empty() {
        s.push_str("# no numeric series to plot\n");
    } else {
        s.push_str(&format!("plot {}\n", plots.join(", \\\n     ")));
    }
    s
}

/// Write a table's TSV *and* its gnuplot script under `dir`.
pub fn write_tsv_with_plot(dir: &Path, id: &str, table: &Table) -> std::io::Result<()> {
    write_tsv(dir, id, table)?;
    let mut f = fs::File::create(dir.join(format!("{id}.gp")))?;
    f.write_all(gnuplot_script(id, table).as_bytes())
}

/// Write all output files of one experiment (TSV, plus the gnuplot
/// script when `plots` is set) and return manifest records describing
/// them. All file writes in the `repro` binary funnel through here, so
/// there is exactly one failure path and the error names the file that
/// could not be written.
pub fn write_table_outputs(
    dir: &Path,
    id: &str,
    table: &Table,
    plots: bool,
) -> Result<Vec<FileRecord>, String> {
    let mut outputs = vec![(format!("{id}.tsv"), table.to_tsv())];
    if plots {
        outputs.push((format!("{id}.gp"), gnuplot_script(id, table)));
    }
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let mut records = Vec::with_capacity(outputs.len());
    for (name, content) in outputs {
        let path = dir.join(&name);
        fs::write(&path, content.as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        records.push(FileRecord {
            path: name,
            hash: fnv1a_hex(content.as_bytes()),
        });
    }
    Ok(records)
}

/// Render a list of experiment tables as one markdown document.
pub fn to_markdown_doc(tables: &[(String, Table)]) -> String {
    let mut out = String::from("# Reproduced tables and figures\n\n");
    for (id, t) in tables {
        out.push_str(&format!("<!-- id: {id} -->\n"));
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_roundtrip_via_disk() {
        let mut t = Table::new("t", &["a"]);
        t.push(vec!["1".into()]);
        let dir = std::env::temp_dir().join("bounce-bench-test");
        write_tsv(&dir, "demo", &t).unwrap();
        let content = std::fs::read_to_string(dir.join("demo.tsv")).unwrap();
        assert!(content.contains("# t"));
        assert!(content.contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gnuplot_script_plots_numeric_columns_only() {
        let mut t = Table::new("demo title", &["n", "x_mops", "label"]);
        t.push(vec!["1".into(), "10.5".into(), "abc".into()]);
        let gp = gnuplot_script("fig1-e5", &t);
        assert!(gp.contains("set output 'fig1-e5.png'"));
        assert!(gp.contains("using 1:2"), "numeric column plotted");
        assert!(!gp.contains("using 1:3"), "text column skipped");
        assert!(gp.contains("demo title"));
    }

    #[test]
    fn gnuplot_script_empty_table() {
        let t = Table::new("empty", &["n", "x"]);
        let gp = gnuplot_script("empty", &t);
        assert!(gp.contains("no numeric series"));
    }

    #[test]
    fn write_tsv_with_plot_creates_both_files() {
        let mut t = Table::new("t", &["n", "v"]);
        t.push(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("bounce-bench-plot-test");
        write_tsv_with_plot(&dir, "demo", &t).unwrap();
        assert!(dir.join("demo.tsv").exists());
        assert!(dir.join("demo.gp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_table_outputs_records_match_disk() {
        let mut t = Table::new("t", &["n", "v"]);
        t.push(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("bounce-bench-outputs-test");
        let _ = std::fs::remove_dir_all(&dir);
        let recs = write_table_outputs(&dir, "demo", &t, true).unwrap();
        assert_eq!(recs.len(), 2, "tsv + gnuplot script");
        for r in &recs {
            let bytes = std::fs::read(dir.join(&r.path)).unwrap();
            assert_eq!(fnv1a_hex(&bytes), r.hash, "hash of {}", r.path);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_table_outputs_error_names_file() {
        let t = Table::new("t", &["a"]);
        // A path under an existing *file* cannot be created as a dir.
        let blocker = std::env::temp_dir().join("bounce-bench-blocker");
        std::fs::write(&blocker, b"file").unwrap();
        let err = write_table_outputs(&blocker.join("sub"), "demo", &t, false).unwrap_err();
        assert!(
            err.contains("bounce-bench-blocker"),
            "error names path: {err}"
        );
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn markdown_doc_contains_all_ids() {
        let mut t = Table::new("t", &["a"]);
        t.push(vec!["1".into()]);
        let doc = to_markdown_doc(&[("x1".into(), t.clone()), ("x2".into(), t)]);
        assert!(doc.contains("id: x1") && doc.contains("id: x2"));
    }
}
