//! `BENCH_repro.json`: the repro campaign's wall-clock record.
//!
//! The file lives at the repo root and holds one entry per run-length
//! mode, so the adaptive speedup is always read against the exact
//! (fixed full-budget) baseline of the same machine:
//!
//! ```json
//! {
//!   "exact": { "command": "...", "wall_seconds": 1.62, ... },
//!   "adaptive": { "command": "...", "wall_seconds": 0.58, ... }
//! }
//! ```
//!
//! A `--timings` run rewrites only its own mode's entry and preserves
//! the other, so alternating `--exact` and default runs converge to a
//! complete file. The merge is hand-rolled (the workspace carries no
//! JSON parser dependency): a balanced-brace scan that is tolerant of
//! unknown keys and whitespace.

/// One campaign's timing record (one run-length mode).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// The command line that produced the entry.
    pub command: String,
    /// Worker thread count.
    pub jobs: usize,
    /// End-to-end campaign wall-clock, seconds.
    pub wall_seconds: f64,
    /// Total simulator events processed.
    pub simulated_events: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Number of experiments in the campaign.
    pub experiments: usize,
    /// Number of engine runs (simulation points).
    pub runs: u64,
    /// How many runs terminated early on convergence.
    pub early_stop_runs: u64,
    /// Total cycles actually simulated.
    pub cycles_simulated: u64,
    /// Total cycles budgeted (what fixed mode would have simulated).
    pub cycles_budgeted: u64,
}

impl BenchEntry {
    /// Render as a JSON object indented for nesting one level deep.
    pub fn to_json(&self) -> String {
        let saved_pct = if self.cycles_budgeted == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.cycles_simulated as f64 / self.cycles_budgeted as f64)
        };
        format!(
            "{{\n    \"command\": \"{}\",\n    \"jobs\": {},\n    \"wall_seconds\": {:.3},\n    \"simulated_events\": {},\n    \"events_per_sec\": {:.0},\n    \"experiments\": {},\n    \"runs\": {},\n    \"early_stop_runs\": {},\n    \"cycles_simulated\": {},\n    \"cycles_budgeted\": {},\n    \"cycles_saved_pct\": {:.1}\n  }}",
            self.command,
            self.jobs,
            self.wall_seconds,
            self.simulated_events,
            self.events_per_sec,
            self.experiments,
            self.runs,
            self.early_stop_runs,
            self.cycles_simulated,
            self.cycles_budgeted,
            saved_pct
        )
    }
}

/// Extract the balanced `{...}` object bound to top-level `key`, if any.
/// String-aware: braces inside quoted strings don't count.
fn extract_object(src: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let at = src.find(&needle)?;
    let rest = &src[at + needle.len()..];
    let open = rest.find('{')?;
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escape = false;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_str {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Merge `entry` into an existing `BENCH_repro.json` body under `mode`
/// (`"exact"` or `"adaptive"`), preserving the other mode's entry.
/// Renders `exact` first for a stable field order.
pub fn merge_bench_json(existing: Option<&str>, mode: &str, entry: &BenchEntry) -> String {
    let rendered = entry.to_json();
    let pick = |m: &str| -> Option<String> {
        if m == mode {
            Some(rendered.clone())
        } else {
            existing.and_then(|s| extract_object(s, m))
        }
    };
    let mut parts = Vec::new();
    for m in ["exact", "adaptive"] {
        if let Some(obj) = pick(m) {
            parts.push(format!("  \"{m}\": {obj}"));
        }
    }
    format!("{{\n{}\n}}\n", parts.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(wall: f64) -> BenchEntry {
        BenchEntry {
            command: "repro all --quick".into(),
            jobs: 1,
            wall_seconds: wall,
            simulated_events: 1000,
            events_per_sec: 1000.0 / wall,
            experiments: 40,
            runs: 10,
            early_stop_runs: 4,
            cycles_simulated: 600,
            cycles_budgeted: 1000,
        }
    }

    #[test]
    fn first_write_has_only_its_mode() {
        let s = merge_bench_json(None, "adaptive", &entry(0.5));
        assert!(s.contains("\"adaptive\""));
        assert!(!s.contains("\"exact\""));
        assert!(s.contains("\"cycles_saved_pct\": 40.0"));
    }

    #[test]
    fn merge_preserves_the_other_mode() {
        let first = merge_bench_json(None, "exact", &entry(1.0));
        let both = merge_bench_json(Some(&first), "adaptive", &entry(0.4));
        assert!(both.contains("\"exact\""), "{both}");
        assert!(both.contains("\"adaptive\""), "{both}");
        // Exact renders first regardless of write order.
        assert!(both.find("\"exact\"").unwrap() < both.find("\"adaptive\"").unwrap());
        // And the exact entry's numbers survived the merge.
        assert!(both.contains("\"wall_seconds\": 1.000"), "{both}");
        assert!(both.contains("\"wall_seconds\": 0.400"), "{both}");
    }

    #[test]
    fn rewriting_a_mode_replaces_it() {
        let a = merge_bench_json(None, "adaptive", &entry(0.5));
        let b = merge_bench_json(Some(&a), "adaptive", &entry(0.25));
        assert!(b.contains("\"wall_seconds\": 0.250"));
        assert!(!b.contains("\"wall_seconds\": 0.500"));
    }

    #[test]
    fn extract_ignores_braces_in_strings() {
        let src = r#"{ "exact": { "command": "weird {brace}", "jobs": 1 } }"#;
        let obj = extract_object(src, "exact").unwrap();
        assert!(obj.contains("weird {brace}"));
        assert!(obj.ends_with('}'));
    }

    #[test]
    fn extract_missing_key_is_none() {
        assert!(extract_object("{}", "adaptive").is_none());
    }
}
