//! Exit-code contract of the `repro lint` CI gate.
//!
//! The gate must be impossible to pass vacuously: a clean registry
//! exits zero, and any analyzer error — demonstrated here by the
//! built-in bad-IR selftest (a dangling `Goto`) — must surface as a
//! nonzero exit, because CI only looks at the status code.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn lint_passes_on_the_registered_workloads() {
    let out = repro().arg("lint").output().expect("run repro lint");
    assert!(
        out.status.success(),
        "repro lint failed on shipped workloads:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("workloads clean"),
        "missing coverage summary: {stderr}"
    );
}

#[test]
fn lint_exits_nonzero_on_known_bad_ir() {
    let out = repro()
        .args(["lint", "--bad-ir-selftest"])
        .output()
        .expect("run repro lint --bad-ir-selftest");
    assert_eq!(
        out.status.code(),
        Some(1),
        "a workload-IR analyzer error must fail the gate:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bad-ir-selftest"),
        "diagnostics must name the offending workload: {stdout}"
    );
}
