//! Integration tests for `repro all` crash-safe resume: drive the real
//! binary (via `CARGO_BIN_EXE_repro`), interrupt or vandalise a
//! campaign, and check that `--resume` reconstructs a byte-identical
//! results directory.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const MANIFEST: &str = "MANIFEST.json";
/// A small but representative slice of the campaign: two global tables
/// plus one per-machine figure (4 experiments total), so runs stay fast.
const FILTER: &str = "table1,table2,fig3";

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("repro-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn run_all(dir: &Path, resume: bool) -> Output {
    let mut c = repro();
    c.args(["all", "--quick", "--filter", FILTER, "--out"])
        .arg(dir);
    if resume {
        c.arg("--resume");
    }
    c.output().expect("spawn repro")
}

/// Every file in `dir` by name → contents.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .expect("read results dir")
        .map(|e| {
            let e = e.unwrap();
            let name = e.file_name().into_string().unwrap();
            let bytes = fs::read(e.path()).unwrap();
            (name, bytes)
        })
        .collect()
}

#[test]
fn resume_without_out_is_an_error() {
    let out = repro()
        .args(["all", "--quick", "--resume"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--out"), "stderr should name --out: {err}");
}

#[test]
fn resume_rejects_mismatched_configuration() {
    let dir = tmp_dir("config");
    let first = run_all(&dir, false);
    assert!(first.status.success());
    // Same directory, but now asking for full scale: the quick manifest
    // must not be reused.
    let out = repro()
        .args(["all", "--filter", "table1", "--resume", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("quick=true") && err.contains("quick=false"),
        "stderr should show both configurations: {err}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// The manifest also records the fault-injection configuration: a
/// campaign written on a healthy fabric must not be resumed under
/// `--fabric-faults` (or a different `--retry-policy`) — the cached
/// and fresh tables would disagree silently.
#[test]
fn resume_rejects_mismatched_fault_configuration() {
    let dir = tmp_dir("faults");
    let first = run_all(&dir, false);
    assert!(first.status.success());
    let out = repro()
        .args([
            "all",
            "--quick",
            "--filter",
            "table1",
            "--fabric-faults",
            "moderate",
            "--retry-policy",
            "patient",
            "--resume",
            "--out",
        ])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("fabric=none") && err.contains("fabric=moderate"),
        "stderr should show both fabric configurations: {err}"
    );
    assert!(
        err.contains("retry=backoff") && err.contains("retry=patient"),
        "stderr should show both retry policies: {err}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// Vandalised partial state — one output deleted, one tampered with —
/// is detected by the manifest hashes; `--resume` reruns exactly those
/// experiments and the directory ends up byte-identical to an
/// uninterrupted campaign.
#[test]
fn resume_after_partial_damage_is_byte_identical() {
    let fresh = tmp_dir("fresh");
    let damaged = tmp_dir("damaged");

    let fresh_run = run_all(&fresh, false);
    assert!(fresh_run.status.success(), "fresh run failed");
    let reference = snapshot(&fresh);
    assert!(reference.contains_key(MANIFEST));
    assert!(reference.contains_key("fig3-e5.tsv"));

    // Replay the completed campaign into a second directory, then break it.
    fs::create_dir_all(&damaged).unwrap();
    for (name, bytes) in &reference {
        fs::write(damaged.join(name), bytes).unwrap();
    }
    fs::remove_file(damaged.join("fig3-e5.tsv")).unwrap();
    let mut tampered = reference["fig3-knl.tsv"].clone();
    tampered.extend_from_slice(b"# trailing vandalism\n");
    fs::write(damaged.join("fig3-knl.tsv"), tampered).unwrap();

    let resumed = run_all(&damaged, true);
    assert!(resumed.status.success(), "resumed run failed");
    let err = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        err.contains("2 already complete"),
        "table1+table2 should be skipped: {err}"
    );
    assert_eq!(snapshot(&damaged), reference, "results differ after resume");
    // stdout replays cached tables from disk, so the two campaigns
    // print the same bytes too.
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&fresh_run.stdout),
        "stdout differs after resume"
    );

    fs::remove_dir_all(&fresh).unwrap();
    fs::remove_dir_all(&damaged).unwrap();
}

/// Kill a campaign mid-flight (SIGKILL as soon as the first experiment
/// commits), then `--resume`: the directory must match an uninterrupted
/// run byte for byte.
#[test]
fn killed_campaign_resumes_byte_identical() {
    let fresh = tmp_dir("kill-ref");
    let killed = tmp_dir("kill");

    assert!(run_all(&fresh, false).status.success());
    let reference = snapshot(&fresh);

    let mut child = repro()
        .args(["all", "--quick", "--jobs", "1", "--filter", FILTER, "--out"])
        .arg(&killed)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro");
    // Wait for the first atomic manifest publish, then kill hard. If
    // the campaign finishes before we notice, that's the trivial case
    // and resume becomes a no-op — still a valid check.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while !killed.join(MANIFEST).exists() && std::time::Instant::now() < deadline {
        if child.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let _ = child.kill();
    let _ = child.wait();

    let resumed = run_all(&killed, true);
    assert!(resumed.status.success(), "resumed run failed");
    assert_eq!(
        snapshot(&killed),
        reference,
        "killed+resumed campaign differs from uninterrupted run"
    );

    fs::remove_dir_all(&fresh).unwrap();
    fs::remove_dir_all(&killed).unwrap();
}
