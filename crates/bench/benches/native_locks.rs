//! Native uncontended lock acquire/release cost for every lock
//! implementation in the ladder (the fast-path side of Fig 10).

use bounce_atomics::locks::LockKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_uncontended_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_native_lock_fastpath");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for kind in LockKind::ALL {
        g.bench_function(kind.label(), |b| {
            let lock = kind.build();
            b.iter(|| {
                let t = lock.lock();
                std::hint::black_box(&t);
                lock.unlock(t);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_uncontended_locks);
criterion_main!(benches);
