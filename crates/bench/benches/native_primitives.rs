//! Native uncontended atomic-primitive cost (Table 2's counterpart on
//! the host machine): each primitive executed on a cache-line-isolated
//! word that stays in M state — the `c_p` parameter of the model,
//! measured for real.

use bounce_atomics::{CachePadded, Primitive};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::atomic::AtomicU64;
use std::time::Duration;

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_native_uncontended");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for prim in Primitive::ALL {
        g.bench_function(prim.label(), |b| {
            let cell = CachePadded::new(AtomicU64::new(0));
            b.iter_batched(
                || (),
                |_| std::hint::black_box(prim.execute_native(&cell, 1, 0)),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_cas_expected_hit_vs_miss(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_native_cas_outcome");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    // Always-succeeding CAS: expected tracks the value.
    g.bench_function("cas_success", |b| {
        let cell = CachePadded::new(AtomicU64::new(0));
        let mut expected = 0u64;
        b.iter(|| {
            let out = Primitive::Cas.execute_native(&cell, expected.wrapping_add(1), expected);
            if out.success {
                expected = expected.wrapping_add(1);
            } else {
                expected = out.prev;
            }
            std::hint::black_box(out)
        });
    });
    // Always-failing CAS: stale expected.
    g.bench_function("cas_failure", |b| {
        let cell = CachePadded::new(AtomicU64::new(1));
        b.iter(|| std::hint::black_box(Primitive::Cas.execute_native(&cell, 2, 0)));
    });
    g.finish();
}

/// FAA under different memory orderings: on x86 every `lock xadd` is a
/// full fence regardless, so these should be near-identical — a useful
/// check that the measured `c_p` is the instruction, not the ordering
/// annotation.
fn bench_ordering_cost(c: &mut Criterion) {
    use std::sync::atomic::Ordering;
    let mut g = c.benchmark_group("table2_native_ordering");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    for (label, order) in [
        ("relaxed", Ordering::Relaxed),
        ("acqrel", Ordering::AcqRel),
        ("seqcst", Ordering::SeqCst),
    ] {
        g.bench_function(format!("faa_{label}"), |b| {
            let cell = CachePadded::new(AtomicU64::new(0));
            b.iter(|| std::hint::black_box(cell.fetch_add(1, order)));
        });
    }
    // Plain store vs a SeqCst store (the latter compiles to xchg /
    // mov+mfence — the one place ordering matters on x86).
    g.bench_function("store_relaxed", |b| {
        let cell = CachePadded::new(AtomicU64::new(0));
        b.iter(|| cell.store(1, Ordering::Relaxed));
    });
    g.bench_function("store_seqcst", |b| {
        let cell = CachePadded::new(AtomicU64::new(0));
        b.iter(|| cell.store(1, Ordering::SeqCst));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_cas_expected_hit_vs_miss,
    bench_ordering_cost
);
criterion_main!(benches);
