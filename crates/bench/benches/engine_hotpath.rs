//! Engine hot-path microbenchmark: raw simulator event throughput on a
//! fixed high-contention workload.
//!
//! This is the single-thread counterpart of the parallel campaign
//! speedup: it tracks the cost of the event loop itself (inline event
//! heap, dense line tables, flat topology matrices) in events/sec,
//! independent of how many sweep points run concurrently. Engine
//! construction is excluded from the timed region.

use bounce_harness::experiments::Machine;
use bounce_sim::{ArbitrationPolicy, Engine, SimConfig};
use bounce_topo::Placement;
use bounce_workloads::Workload;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

const DURATION_CYCLES: u64 = 300_000;

fn hc_engine(machine: Machine, n: usize) -> Engine {
    let topo = machine.topo();
    let mut params = machine.sim_params();
    params.arbitration = ArbitrationPolicy::Fifo;
    params.home_policy = bounce_sim::HomePolicy::Fixed(0);
    let mut eng = Engine::new(&topo, SimConfig::new(params, DURATION_CYCLES));
    let w = Workload::HighContention {
        prim: bounce_atomics::Primitive::Faa,
    };
    for (hw, p) in Placement::Packed
        .assign(&topo, n)
        .into_iter()
        .zip(w.sim_programs(n))
    {
        eng.add_thread(hw, p);
    }
    eng
}

fn bench_engine_hotpath(c: &mut Criterion) {
    // One calibration pass so the events/sec figure is visible in plain
    // `cargo bench` output alongside criterion's ns/iter.
    for (machine, n) in [(Machine::E5, 8), (Machine::Knl, 8)] {
        let mut eng = hc_engine(machine, n);
        let t0 = std::time::Instant::now();
        let report = eng.run();
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "engine_hotpath calibration {}_n{}: {} events in {:.3}s = {:.2} M events/s",
            machine.label(),
            n,
            report.events,
            dt,
            report.events as f64 / dt / 1e6
        );
    }
    let mut g = c.benchmark_group("engine_hotpath");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    for (machine, n) in [(Machine::E5, 8), (Machine::E5, 24), (Machine::Knl, 8)] {
        g.bench_function(format!("hc_faa_{}_n{}", machine.label(), n), |b| {
            b.iter_batched(
                || hc_engine(machine, n),
                |mut eng| eng.run(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(engine_hotpath, bench_engine_hotpath);
criterion_main!(engine_hotpath);
