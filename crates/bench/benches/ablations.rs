//! Criterion benches for the ablations (A1–A3): each group runs one
//! simulated variant so regressions in any ablation path show up in
//! `cargo bench`. The outcome numbers themselves come from
//! `repro ablations`.

use bounce_atomics::Primitive;
use bounce_harness::simrun::{sim_measure, SimRunConfig};
use bounce_sim::{ArbitrationPolicy, HomePolicy};
use bounce_topo::{presets, Placement};
use bounce_workloads::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn quick_cfg() -> (bounce_topo::MachineTopology, SimRunConfig) {
    let topo = presets::xeon_e5_2695_v4();
    let mut cfg = SimRunConfig::for_machine(&topo);
    cfg.duration_cycles = 300_000;
    cfg.params.arbitration = ArbitrationPolicy::Fifo;
    (topo, cfg)
}

fn bench_a1_backoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_a1_backoff");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    let (topo, cfg) = quick_cfg();
    for (label, w) in [
        (
            "none",
            Workload::CasRetryLoop {
                window: 30,
                work: 0,
            },
        ),
        (
            "ladder",
            Workload::CasRetryLoopBackoff {
                window: 30,
                backoff: [64, 256, 1024],
            },
        ),
    ] {
        g.bench_function(label, |b| b.iter(|| sim_measure(&topo, &w, 8, &cfg)));
    }
    g.finish();
}

fn bench_a2_home_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_a2_home");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    let (topo, base) = quick_cfg();
    for (label, policy) in [("fixed0", HomePolicy::Fixed(0)), ("hash", HomePolicy::Hash)] {
        let mut cfg = base.clone();
        cfg.params.home_policy = policy;
        g.bench_function(label, |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::HighContention {
                        prim: Primitive::Faa,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_a3_arbitration(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_a3_arbitration");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    let (topo, base) = quick_cfg();
    for arb in ArbitrationPolicy::ALL {
        let mut cfg = base.clone();
        cfg.params.arbitration = arb;
        cfg.placement = Placement::Scattered;
        g.bench_function(arb.label(), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::HighContention {
                        prim: Primitive::Faa,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_a1_backoff,
    bench_a2_home_policy,
    bench_a3_arbitration
);
criterion_main!(ablations);
