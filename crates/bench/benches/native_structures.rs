//! Native single-thread cost of the application structures (the
//! uncontended baselines of the application case study).

use bounce_atomics::counter::{CombiningCounter, ConcurrentCounter, SharedCounter, StripedCounter};
use bounce_atomics::queue::MsQueue;
use bounce_atomics::stack::TreiberStack;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps_native_structures");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));

    g.bench_function("stack_push_pop", |b| {
        let s = TreiberStack::new();
        b.iter(|| {
            s.push(1u64);
            std::hint::black_box(s.pop())
        });
    });

    g.bench_function("queue_enq_deq", |b| {
        let q = MsQueue::new();
        b.iter(|| {
            q.enqueue(1u64);
            std::hint::black_box(q.dequeue())
        });
    });

    g.bench_function("counter_shared_add", |b| {
        let c = SharedCounter::new();
        b.iter(|| c.add(0, 1));
    });

    g.bench_function("counter_striped_add", |b| {
        let c = StripedCounter::new(8);
        b.iter(|| c.add(3, 1));
    });

    g.bench_function("counter_combining_add", |b| {
        let c = CombiningCounter::new(8);
        b.iter(|| c.add(3, 1));
    });

    g.bench_function("seqlock_read", |b| {
        let sl = bounce_atomics::SeqLock::new([1u64, 2, 3, 4]);
        b.iter(|| std::hint::black_box(sl.read()));
    });

    g.bench_function("seqlock_write", |b| {
        let sl = bounce_atomics::SeqLock::new([0u64; 4]);
        b.iter(|| sl.write(|d| d[0] += 1));
    });

    g.finish();
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);
