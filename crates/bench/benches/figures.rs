//! One Criterion bench per reproduced table/figure: each group runs the
//! experiment's representative simulation point(s). `cargo bench`
//! therefore exercises the full regeneration path of every figure and
//! tracks its cost; the `repro` binary prints the actual rows.

use bounce_atomics::Primitive;
use bounce_harness::experiments::{self, ExpCtx, Machine};
use bounce_harness::simrun::{sim_measure, SimRunConfig};
use bounce_sim::ArbitrationPolicy;
use bounce_topo::Placement;
use bounce_workloads::{LockShape, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(200));
    g.measurement_time(Duration::from_secs(1));
    g
}

fn quick_cfg(m: Machine) -> (bounce_topo::MachineTopology, SimRunConfig) {
    let topo = m.topo();
    let mut cfg = SimRunConfig {
        params: m.sim_params(),
        duration_cycles: 300_000,
        placement: Placement::Packed,
    };
    cfg.params.arbitration = ArbitrationPolicy::Fifo;
    (topo, cfg)
}

fn bench_table2(c: &mut Criterion) {
    let mut g = group(c, "table2_lc_latency");
    let (topo, cfg) = quick_cfg(Machine::E5);
    for prim in [Primitive::Faa, Primitive::Cas] {
        g.bench_function(prim.label(), |b| {
            b.iter(|| sim_measure(&topo, &Workload::LowContention { prim, work: 0 }, 1, &cfg))
        });
    }
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = group(c, "fig1_hc_throughput");
    for m in Machine::ALL {
        let (topo, cfg) = quick_cfg(m);
        g.bench_function(m.label(), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::HighContention {
                        prim: Primitive::Faa,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = group(c, "fig2_hc_latency");
    let (topo, cfg) = quick_cfg(Machine::E5);
    g.bench_function("e5_cas_n8", |b| {
        b.iter(|| {
            sim_measure(
                &topo,
                &Workload::HighContention {
                    prim: Primitive::Cas,
                },
                8,
                &cfg,
            )
        })
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = group(c, "fig3_cas_retry");
    let (topo, cfg) = quick_cfg(Machine::E5);
    g.bench_function("e5_n8_win30", |b| {
        b.iter(|| {
            sim_measure(
                &topo,
                &Workload::CasRetryLoop {
                    window: 30,
                    work: 0,
                },
                8,
                &cfg,
            )
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = group(c, "fig4_fairness");
    for arb in ArbitrationPolicy::ALL {
        let (topo, mut cfg) = quick_cfg(Machine::E5);
        cfg.params.arbitration = arb;
        cfg.placement = Placement::Scattered;
        g.bench_function(arb.label(), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::HighContention {
                        prim: Primitive::Faa,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = group(c, "fig5_energy");
    let (topo, cfg) = quick_cfg(Machine::Knl);
    g.bench_function("knl_faa_n8", |b| {
        b.iter(|| {
            sim_measure(
                &topo,
                &Workload::HighContention {
                    prim: Primitive::Faa,
                },
                8,
                &cfg,
            )
            .energy_per_op_nj
        })
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = group(c, "fig6_lc_scaling");
    let (topo, cfg) = quick_cfg(Machine::E5);
    g.bench_function("e5_faa_n8_private", |b| {
        b.iter(|| {
            sim_measure(
                &topo,
                &Workload::LowContention {
                    prim: Primitive::Faa,
                    work: 0,
                },
                8,
                &cfg,
            )
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = group(c, "fig7_model_validation");
    g.bench_function("e5_fit_and_predict", |b| {
        b.iter(|| experiments::fig7(ExpCtx::quick(), Machine::E5).unwrap())
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = group(c, "fig8_placement");
    for p in Placement::ALL {
        let (topo, mut cfg) = quick_cfg(Machine::E5);
        cfg.placement = p;
        g.bench_function(p.label(), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::HighContention {
                        prim: Primitive::Faa,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = group(c, "fig9_dilution");
    let (topo, cfg) = quick_cfg(Machine::E5);
    for work in [0u64, 800] {
        g.bench_function(format!("e5_n8_work{work}"), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::Diluted {
                        prim: Primitive::Faa,
                        work,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = group(c, "fig10_locks");
    let (topo, cfg) = quick_cfg(Machine::E5);
    for shape in LockShape::ALL {
        g.bench_function(shape.label(), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::LockHandoff {
                        shape,
                        cs: 100,
                        noncs: 100,
                    },
                    4,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = group(c, "fig11_false_sharing");
    let (topo, cfg) = quick_cfg(Machine::E5);
    for (label, w) in [
        (
            "false-sharing",
            Workload::FalseSharing {
                prim: Primitive::Faa,
            },
        ),
        (
            "padded",
            Workload::LowContention {
                prim: Primitive::Faa,
                work: 0,
            },
        ),
    ] {
        g.bench_function(label, |b| b.iter(|| sim_measure(&topo, &w, 8, &cfg)));
    }
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = group(c, "fig12_mixed_rw");
    for protocol in [
        bounce_sim::CoherenceKind::Mesif,
        bounce_sim::CoherenceKind::Mesi,
    ] {
        let (topo, mut cfg) = quick_cfg(Machine::E5);
        cfg.params.protocol = protocol;
        g.bench_function(protocol.label(), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::MixedReadWrite {
                        writers: 1,
                        prim: Primitive::Faa,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = group(c, "fig13_striping");
    let (topo, cfg) = quick_cfg(Machine::E5);
    for lines in [1usize, 4] {
        g.bench_function(format!("lines{lines}"), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::MultiLine {
                        prim: Primitive::Faa,
                        lines,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = group(c, "fig14_zipf");
    let (topo, cfg) = quick_cfg(Machine::E5);
    for theta in [0.0f64, 1.2] {
        g.bench_function(format!("theta{theta:.1}"), |b| {
            b.iter(|| {
                sim_measure(
                    &topo,
                    &Workload::Zipf {
                        prim: Primitive::Faa,
                        lines: 8,
                        theta,
                        seed: 7,
                    },
                    8,
                    &cfg,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_table2,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14
);
criterion_main!(figures);
