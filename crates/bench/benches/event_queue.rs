//! Event-queue microbenchmark: the calendar queue against the
//! `BinaryHeap` it replaced, under the engine's empirical event-horizon
//! distribution.
//!
//! The engine schedules almost everything a short hop ahead of `now`
//! (L1 hits, directory service, interconnect segments: tens to a few
//! hundred cycles) and only rarely far out (preemption wakeups,
//! watchdog epochs). The hold model below reproduces that shape: a
//! steady population of K in-flight events, each pop rescheduling one
//! event at `now + offset` with offsets drawn cyclically from the
//! empirical mix. The calendar queue's wheel covers the common case in
//! O(1); the far offsets exercise its overflow heap.

use bounce_sim::CalendarQueue;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// In-flight event population (roughly threads × outstanding
/// transactions in a contended quick-mode run).
const K: usize = 64;

/// Empirical schedule-ahead offsets, cycles: L1/local ops, directory
/// service, socket-hop transfers, cross-socket transfers, and a rare
/// far-future wakeup that lands beyond the wheel span.
const OFFSETS: [u64; 16] = [
    25, 40, 25, 300, 40, 25, 400, 25, 40, 300, 25, 40, 25, 400, 300, 2000,
];

const HOLD_OPS: usize = 10_000;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));

    g.bench_function("calendar_hold", |b| {
        b.iter_batched(
            || {
                let mut q = CalendarQueue::new();
                for i in 0..K {
                    q.push(i as u64, i as u32);
                }
                q
            },
            |mut q| {
                let mut off = 0usize;
                for _ in 0..HOLD_OPS {
                    let (t, v) = q.pop().unwrap();
                    q.push(t + OFFSETS[off], v);
                    off = (off + 1) % OFFSETS.len();
                }
                q
            },
            BatchSize::SmallInput,
        )
    });

    // The displaced implementation: a min-heap via `Reverse`, with the
    // same (time, seq) entries the engine used to store.
    g.bench_function("binaryheap_hold", |b| {
        b.iter_batched(
            || {
                let mut q: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
                for i in 0..K {
                    q.push(Reverse((i as u64, i as u64, i as u32)));
                }
                q
            },
            |mut q| {
                let mut off = 0usize;
                for seq in K as u64..(K + HOLD_OPS) as u64 {
                    let Reverse((t, _, v)) = q.pop().unwrap();
                    q.push(Reverse((t + OFFSETS[off], seq, v)));
                    off = (off + 1) % OFFSETS.len();
                }
                q
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
