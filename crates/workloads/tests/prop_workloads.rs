//! Property tests: every workload variant compiles to valid simulator
//! programs for arbitrary thread counts, and the address map keeps its
//! isolation guarantees.

use bounce_atomics::Primitive;
use bounce_sim::program::Step;
use bounce_workloads::{AddressMap, LockShape, Workload};
use proptest::prelude::*;

fn prim_strategy() -> impl Strategy<Value = Primitive> {
    prop_oneof![
        Just(Primitive::Load),
        Just(Primitive::Store),
        Just(Primitive::Swap),
        Just(Primitive::Tas),
        Just(Primitive::Faa),
        Just(Primitive::Cas),
    ]
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop_oneof![
        prim_strategy().prop_map(|prim| Workload::HighContention { prim }),
        (prim_strategy(), 0u64..500)
            .prop_map(|(prim, work)| Workload::LowContention { prim, work }),
        (prim_strategy(), 0u64..500).prop_map(|(prim, work)| Workload::Diluted { prim, work }),
        (0u64..200, 0u64..200).prop_map(|(window, work)| Workload::CasRetryLoop { window, work }),
        (1usize..8, prim_strategy())
            .prop_map(|(writers, prim)| Workload::MixedReadWrite { writers, prim }),
        (0usize..4, 1u64..500, 1u64..500).prop_map(|(s, cs, noncs)| Workload::LockHandoff {
            shape: LockShape::ALL[s],
            cs,
            noncs
        }),
        prim_strategy().prop_map(|prim| Workload::FalseSharing { prim }),
        (0u64..100, 1u64..1000).prop_map(|(window, b)| Workload::CasRetryLoopBackoff {
            window,
            backoff: [b, b * 2, b * 4]
        }),
        (prim_strategy(), 1usize..32).prop_map(|(prim, lines)| Workload::MultiLine { prim, lines }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every workload compiles one valid program per thread — the
    /// builders never panic and Program::new never rejects — for any
    /// thread count up to the KNL maximum.
    #[test]
    fn all_workloads_compile_for_any_n(w in workload_strategy(), n in 1usize..=288) {
        let programs = w.sim_programs(n);
        prop_assert_eq!(programs.len(), n, "{}", w.label());
        for p in &programs {
            prop_assert!(!p.is_empty());
        }
    }

    /// Labels are stable and unique per configuration (within the
    /// generated space two equal workloads share a label; unequal
    /// configurations of the same variant differ).
    #[test]
    fn labels_deterministic(w in workload_strategy()) {
        prop_assert_eq!(w.label(), w.clone().label());
        prop_assert!(!w.label().is_empty());
    }

    /// The address map: every thread's lines are distinct from the
    /// shared lines for LC workloads of any size.
    #[test]
    fn private_lines_never_collide_with_shared(n in 1usize..288) {
        let map = AddressMap;
        let shared = map.shared().line;
        for i in 0..n {
            prop_assert_ne!(map.private(i).line, shared);
        }
    }

    /// MCS per-thread node lines are unique across threads and disjoint
    /// from the tail word.
    #[test]
    fn mcs_node_lines_unique(n in 2usize..128) {
        let w = Workload::LockHandoff { shape: LockShape::Mcs, cs: 10, noncs: 10 };
        let programs = w.sim_programs(n);
        // Collect the static "arm own flag" store target per thread.
        let mut flag_lines = std::collections::HashSet::new();
        for p in &programs {
            let flag = p.steps().iter().find_map(|s| match s {
                Step::Op {
                    prim: Primitive::Store,
                    addr,
                    operand: bounce_sim::program::Operand::Const(1),
                    ..
                } => Some(addr.line),
                _ => None,
            });
            let flag = flag.expect("mcs program arms its flag");
            prop_assert!(flag_lines.insert(flag), "duplicate flag line");
            prop_assert_ne!(flag, AddressMap.lock().line);
        }
    }
}
