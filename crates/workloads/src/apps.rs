//! Native application workloads: real threads exercising the concurrent
//! structures from `bounce-atomics` for a fixed wall-clock duration.
//!
//! These are the "application context" of the study — the places a
//! developer actually chooses between primitives and structures. They
//! run on the host machine with plain `std::thread`s (pinning is the
//! harness's job); on a single-CPU host they still verify correctness
//! and produce coarse timings.

use bounce_atomics::counter::{CombiningCounter, ConcurrentCounter, SharedCounter, StripedCounter};
use bounce_atomics::locks::{LockKind, RawLock};
use bounce_atomics::queue::MsQueue;
use bounce_atomics::stack::TreiberStack;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Result of one native application run.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Completed operations per thread.
    pub per_thread_ops: Vec<u64>,
    /// Wall-clock duration of the measured phase.
    pub duration: Duration,
}

impl AppResult {
    /// Total operations.
    pub fn total_ops(&self) -> u64 {
        self.per_thread_ops.iter().sum()
    }

    /// Aggregate throughput, ops/second.
    pub fn throughput(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_ops() as f64 / secs
        }
    }

    /// Jain fairness over per-thread op counts.
    pub fn jain(&self) -> f64 {
        let xs: Vec<f64> = self.per_thread_ops.iter().map(|&x| x as f64).collect();
        if xs.is_empty() {
            return 1.0;
        }
        let s: f64 = xs.iter().sum();
        let s2: f64 = xs.iter().map(|x| x * x).sum();
        if s2 == 0.0 {
            1.0
        } else {
            s * s / (xs.len() as f64 * s2)
        }
    }
}

fn run_for<F>(threads: usize, dur: Duration, body: F) -> AppResult
where
    F: Fn(usize, &AtomicBool) -> u64 + Send + Sync + 'static,
{
    assert!(threads >= 1);
    let stop = Arc::new(AtomicBool::new(false));
    let body = Arc::new(body);
    let start = Instant::now();
    let mut handles = Vec::with_capacity(threads);
    for tid in 0..threads {
        let stop = Arc::clone(&stop);
        let body = Arc::clone(&body);
        handles.push(thread::spawn(move || body(tid, &stop)));
    }
    thread::sleep(dur);
    stop.store(true, Ordering::SeqCst);
    let per_thread_ops: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    AppResult {
        per_thread_ops,
        duration: start.elapsed(),
    }
}

/// Counter construction strategies for [`run_counter_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// One shared FAA cell (the high-contention setting).
    Shared,
    /// Per-thread padded stripes (the low-contention transformation).
    Striped,
    /// Flat combining: publish on own line, batch into the hot line.
    Combining,
}

impl CounterKind {
    /// All kinds.
    pub const ALL: [CounterKind; 3] = [
        CounterKind::Shared,
        CounterKind::Striped,
        CounterKind::Combining,
    ];

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            CounterKind::Shared => "shared",
            CounterKind::Striped => "striped",
            CounterKind::Combining => "combining",
        }
    }
}

/// Run the counter app with an explicit construction strategy.
pub fn run_counter_kind(kind: CounterKind, threads: usize, dur: Duration) -> AppResult {
    let counter: Arc<dyn ConcurrentCounter> = match kind {
        CounterKind::Shared => Arc::new(SharedCounter::new()),
        CounterKind::Striped => Arc::new(StripedCounter::new(threads.max(1))),
        CounterKind::Combining => Arc::new(CombiningCounter::new(threads.max(1))),
    };
    let total_check = Arc::clone(&counter);
    let result = run_for(threads, dur, move |tid, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            counter.add(tid, 1);
            ops += 1;
        }
        ops
    });
    debug_assert_eq!(total_check.read(), result.total_ops());
    result
}

/// Shared vs. striped counter (the HC → LC transformation, natively).
pub fn run_counter(threads: usize, dur: Duration, striped: bool) -> AppResult {
    let counter: Arc<dyn ConcurrentCounter> = if striped {
        Arc::new(StripedCounter::new(threads.max(1)))
    } else {
        Arc::new(SharedCounter::new())
    };
    let total_check = Arc::clone(&counter);
    let result = run_for(threads, dur, move |tid, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            counter.add(tid, 1);
            ops += 1;
        }
        ops
    });
    // Linearisability sanity: the counter saw every increment.
    debug_assert_eq!(total_check.read(), result.total_ops());
    result
}

/// Treiber stack: each thread alternates push/pop.
pub fn run_stack(threads: usize, dur: Duration) -> AppResult {
    let stack = Arc::new(TreiberStack::new());
    // Pre-fill so early pops succeed.
    for i in 0..threads as u64 * 4 {
        stack.push(i);
    }
    run_for(threads, dur, move |tid, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            if ops.is_multiple_of(2) {
                stack.push(tid as u64);
            } else {
                let _ = stack.pop();
            }
            ops += 1;
        }
        ops
    })
}

/// Michael–Scott queue: each thread alternates enqueue/dequeue.
pub fn run_queue(threads: usize, dur: Duration) -> AppResult {
    let queue = Arc::new(MsQueue::new());
    for i in 0..threads as u64 * 4 {
        queue.enqueue(i);
    }
    run_for(threads, dur, move |tid, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            if ops.is_multiple_of(2) {
                queue.enqueue(tid as u64);
            } else {
                let _ = queue.dequeue();
            }
            ops += 1;
        }
        ops
    })
}

/// Read-mostly seqlock: one writer updates a consistent pair, readers
/// snapshot it. Returns per-thread op counts (thread 0 is the writer).
/// Every reader asserts snapshot consistency — the run panics on a torn
/// read.
pub fn run_seqlock(readers: usize, dur: Duration) -> AppResult {
    use bounce_atomics::SeqLock;
    let sl = Arc::new(SeqLock::new([0u64, 0]));
    run_for(readers + 1, dur, move |tid, stop| {
        let mut ops = 0u64;
        if tid == 0 {
            while !stop.load(Ordering::Relaxed) {
                sl.write(|d| {
                    d[0] += 1;
                    d[1] = d[0].wrapping_mul(7);
                });
                ops += 1;
            }
        } else {
            while !stop.load(Ordering::Relaxed) {
                let (v, _) = sl.read();
                assert_eq!(v[1], v[0].wrapping_mul(7), "torn read {v:?}");
                ops += 1;
            }
        }
        ops
    })
}

/// Lock handoff: acquire, spin `cs_spins` iterations inside, release.
/// Returns acquisitions per thread.
pub fn run_lock(kind: LockKind, threads: usize, dur: Duration, cs_spins: u32) -> AppResult {
    let lock: Arc<dyn RawLock> = Arc::from(kind.build());
    run_for(threads, dur, move |_tid, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let token = lock.lock();
            for _ in 0..cs_spins {
                std::hint::spin_loop();
            }
            lock.unlock(token);
            ops += 1;
        }
        ops
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUR: Duration = Duration::from_millis(40);

    #[test]
    fn counter_counts() {
        for striped in [false, true] {
            let r = run_counter(3, DUR, striped);
            assert_eq!(r.per_thread_ops.len(), 3);
            assert!(r.total_ops() > 0, "striped={striped}");
            assert!(r.throughput() > 0.0);
        }
    }

    #[test]
    fn counter_kinds_all_exact() {
        for kind in CounterKind::ALL {
            let r = run_counter_kind(kind, 3, DUR);
            assert!(r.total_ops() > 0, "{}", kind.label());
        }
    }

    #[test]
    fn stack_and_queue_run() {
        let s = run_stack(2, DUR);
        assert!(s.total_ops() > 0);
        let q = run_queue(2, DUR);
        assert!(q.total_ops() > 0);
    }

    #[test]
    fn locks_run_under_all_kinds() {
        for kind in LockKind::ALL {
            let r = run_lock(kind, 2, DUR, 10);
            assert!(r.total_ops() > 0, "{}", kind.label());
        }
    }

    #[test]
    fn seqlock_app_no_torn_reads() {
        let r = run_seqlock(2, DUR);
        assert_eq!(r.per_thread_ops.len(), 3);
        assert!(r.per_thread_ops[0] > 0, "writer progressed");
        assert!(
            r.per_thread_ops[1..].iter().any(|&x| x > 0),
            "readers progressed"
        );
    }

    #[test]
    fn jain_bounds_hold() {
        let r = run_counter(4, DUR, true);
        let j = r.jain();
        assert!(j > 0.0 && j <= 1.0 + 1e-9, "jain={j}");
    }

    #[test]
    fn single_thread_fair_by_definition() {
        let r = run_counter(1, DUR, false);
        assert_eq!(r.jain(), 1.0);
    }
}
