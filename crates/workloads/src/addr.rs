//! Address-map conventions shared by every workload: where the shared
//! line, the private lines, and the lock words live in the simulated
//! address space.
//!
//! Lines are spaced 128 bytes apart (two 64-byte lines) mirroring the
//! `CachePadded` convention of the native side, so neither false sharing
//! nor adjacent-line prefetching can couple them.

use bounce_sim::cache::WordAddr;

/// Base of the shared (contended) region.
const SHARED_BASE: u64 = 0x0001_0000;
/// Base of the per-thread private region.
const PRIVATE_BASE: u64 = 0x0010_0000;
/// Base of the lock region.
const LOCK_BASE: u64 = 0x0002_0000;
/// Base of the MCS per-thread flag nodes.
const MCS_FLAG_BASE: u64 = 0x0003_0000;
/// Base of the MCS per-thread successor links.
const MCS_NEXT_BASE: u64 = 0x0004_0000;
/// Base of the per-thread scan region (set-conflicting filler lines).
const SCAN_BASE: u64 = 0x0005_0000;
/// Spacing between allocated lines (a padded cell: 2 lines).
const STRIDE: u64 = 128;

/// The canonical address map used by all experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct AddressMap;

impl AddressMap {
    /// The single shared contended word (word 0 of the shared line).
    pub fn shared(&self) -> WordAddr {
        WordAddr::of_line(SHARED_BASE)
    }

    /// A second shared word on a *different* line (e.g. a ticket lock's
    /// `serving` counter next to `next`).
    pub fn shared_aux(&self, k: u64) -> WordAddr {
        WordAddr::of_line(SHARED_BASE + STRIDE * (k + 1))
    }

    /// Thread `i`'s private line.
    pub fn private(&self, i: usize) -> WordAddr {
        WordAddr::of_line(PRIVATE_BASE + STRIDE * i as u64)
    }

    /// The lock word.
    pub fn lock(&self) -> WordAddr {
        WordAddr::of_line(LOCK_BASE)
    }

    /// The ticket lock's serving word (separate line from the ticket
    /// counter, as any competent implementation pads it).
    pub fn lock_serving(&self) -> WordAddr {
        WordAddr::of_line(LOCK_BASE + STRIDE)
    }

    /// Base of the MCS flag-node region (thread j's flag is
    /// `mcs_flag_base + 128·j`).
    pub fn mcs_flag_base(&self) -> WordAddr {
        WordAddr::of_line(MCS_FLAG_BASE)
    }

    /// Base of the MCS next-link region.
    pub fn mcs_next_base(&self) -> WordAddr {
        WordAddr::of_line(MCS_NEXT_BASE)
    }

    /// Thread `i`'s scan line: private to the thread, but guaranteed to
    /// map to the *same* L1 set as [`shared`](Self::shared) — every base
    /// and stride in this map is a multiple of 64, the largest set count
    /// in use — so touching it can evict the thread's copy of the shared
    /// line ([`Workload::ReadScan`](crate::Workload::ReadScan)).
    pub fn scan_conflict(&self, i: usize) -> WordAddr {
        WordAddr::of_line(SCAN_BASE + STRIDE * i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_regions_disjoint() {
        let m = AddressMap;
        let mut lines = HashSet::new();
        lines.insert(m.shared().line);
        lines.insert(m.shared_aux(0).line);
        lines.insert(m.shared_aux(1).line);
        lines.insert(m.lock().line);
        lines.insert(m.lock_serving().line);
        for j in 0..64u64 {
            lines.insert(bounce_sim::cache::LineId(
                m.mcs_flag_base().line.0 + 128 * j,
            ));
            lines.insert(bounce_sim::cache::LineId(
                m.mcs_next_base().line.0 + 128 * j,
            ));
        }
        for i in 0..64 {
            lines.insert(m.private(i).line);
            lines.insert(m.scan_conflict(i).line);
        }
        assert_eq!(lines.len(), 5 + 64 + 64 + 128, "no two cells share a line");
    }

    #[test]
    fn scan_lines_conflict_with_shared_set() {
        let m = AddressMap;
        for i in 0..16 {
            assert_eq!(
                m.scan_conflict(i).line.0 % 64,
                m.shared().line.0 % 64,
                "scan line {i} must map to the shared line's L1 set"
            );
        }
    }

    #[test]
    fn private_lines_strided() {
        let m = AddressMap;
        let a = m.private(0).line.0;
        let b = m.private(1).line.0;
        assert_eq!(b - a, 128, "padded spacing");
    }
}
