//! The workload specifications and their compilation to simulator
//! programs.

use crate::addr::AddressMap;
use bounce_atomics::Primitive;
use bounce_core::Scenario;
use bounce_sim::program::{builders, Operand, Program, Step};
use bounce_topo::HwThreadId;
use serde::{Deserialize, Serialize};

// `LockShape` (the lock algorithm used by [`Workload::LockHandoff`]) now
// lives in `bounce_atomics` next to the concrete lock implementations, so
// the model layer can key on it without depending on this crate. Kept as
// a re-export for existing importers.
pub use bounce_atomics::LockShape;

/// A complete workload description — what each of `n` threads does.
///
/// ```
/// use bounce_workloads::Workload;
/// use bounce_atomics::Primitive;
///
/// let w = Workload::HighContention { prim: Primitive::Cas };
/// assert!(w.is_high_contention());
/// // A workload compiles itself into one simulator program per thread.
/// let programs = w.sim_programs(4);
/// assert_eq!(programs.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// All threads apply `prim` to the one shared line, back to back.
    HighContention {
        /// Primitive under test.
        prim: Primitive,
    },
    /// Each thread applies `prim` to its own private line, back to back.
    LowContention {
        /// Primitive under test.
        prim: Primitive,
        /// Local work between ops, cycles.
        work: u64,
    },
    /// All threads share one line, with `work` cycles of local compute
    /// between ops — sweeps the HC → LC transition (experiment E11).
    Diluted {
        /// Primitive under test.
        prim: Primitive,
        /// Local work between ops, cycles.
        work: u64,
    },
    /// Read the shared word, compute for `window` cycles, CAS(old,
    /// old+1); retry on failure. The canonical lock-free-update shape.
    CasRetryLoop {
        /// Cycles between the read and the CAS.
        window: u64,
        /// Local work after a successful update, cycles.
        work: u64,
    },
    /// The first `writers` threads RMW the shared line; the rest only
    /// load it. Probes the read-mostly regime where MESIF's Forward
    /// state matters.
    MixedReadWrite {
        /// Number of writer threads (the rest read).
        writers: usize,
        /// Writers' primitive.
        prim: Primitive,
    },
    /// Read-heavy sharing under cache-capacity pressure — the coherence
    /// protocol ablation's separator (experiment E13). The first
    /// `writers` threads FAA the shared line with `writer_work` cycles
    /// between ops; every other thread loads it and then walks a private
    /// line that maps to the *same* L1 set, evicting its own copy — so
    /// each of its shared reads is a fresh directory transaction. Which
    /// data path answers those reads (MESIF's Forward copy, MOESI's
    /// serialised Owned supplier, or memory under plain MESI) dominates
    /// throughput. Meant to run with a direct-mapped L1 (`l1_ways = 1`)
    /// so a single conflicting line evicts.
    ReadScan {
        /// Number of writer threads (the rest scan-read).
        writers: usize,
        /// Writers' local work between RMWs, cycles.
        writer_work: u64,
    },
    /// Lock / critical-section handoff with the given lock algorithm.
    LockHandoff {
        /// Lock algorithm.
        shape: LockShape,
        /// Critical-section length, cycles.
        cs: u64,
        /// Non-critical-section length, cycles.
        noncs: u64,
    },
    /// Each thread updates its own *word*, but all words share one
    /// cache line — false sharing. Logically private data behaves like
    /// the high-contention setting; the padded antidote is
    /// [`Workload::LowContention`].
    FalseSharing {
        /// Primitive under test.
        prim: Primitive,
    },
    /// CAS retry loop with a bounded-exponential backoff ladder applied
    /// after consecutive failures (the backoff ablation).
    CasRetryLoopBackoff {
        /// Cycles between the read and the CAS.
        window: u64,
        /// Spin windows after the 1st, 2nd, 3rd+ consecutive failure.
        backoff: [u64; 3],
    },
    /// Contention spreading: thread `i` hammers shared line `i % lines`
    /// — the line-striped counter. `lines = 1` degenerates to
    /// [`Workload::HighContention`]; `lines = n` to
    /// [`Workload::LowContention`].
    MultiLine {
        /// Primitive under test.
        prim: Primitive,
        /// Number of distinct (padded) contended lines.
        lines: usize,
    },
    /// Zipf-skewed contention: each thread's ops target `lines` padded
    /// lines with Zipf(θ) popularity — the realistic interpolation
    /// between striped (θ = 0) and single-line (θ large) contention.
    Zipf {
        /// Primitive under test.
        prim: Primitive,
        /// Number of distinct lines.
        lines: usize,
        /// Skew exponent (θ ≥ 0; 0 = uniform).
        theta: f64,
        /// RNG seed for the per-thread op sequences.
        seed: u64,
    },
}

impl Workload {
    /// Short label for tables and bench ids.
    pub fn label(&self) -> String {
        match self {
            Workload::HighContention { prim } => format!("hc-{prim}"),
            Workload::LowContention { prim, work } => format!("lc-{prim}-w{work}"),
            Workload::Diluted { prim, work } => format!("diluted-{prim}-w{work}"),
            Workload::CasRetryLoop { window, work } => {
                format!("casloop-win{window}-w{work}")
            }
            Workload::MixedReadWrite { writers, prim } => {
                format!("mixed-{prim}-{writers}w")
            }
            Workload::ReadScan {
                writers,
                writer_work,
            } => format!("readscan-{writers}w-w{writer_work}"),
            Workload::LockHandoff { shape, cs, noncs } => {
                format!("lock-{}-cs{cs}-n{noncs}", shape.label())
            }
            Workload::FalseSharing { prim } => format!("false-sharing-{prim}"),
            Workload::CasRetryLoopBackoff { window, backoff } => {
                format!(
                    "casloop-win{window}-bo{}-{}-{}",
                    backoff[0], backoff[1], backoff[2]
                )
            }
            Workload::MultiLine { prim, lines } => format!("multiline-{prim}-l{lines}"),
            Workload::Zipf {
                prim,
                lines,
                theta,
                seed,
            } => format!("zipf-{prim}-l{lines}-t{theta:.2}-s{seed}"),
        }
    }

    /// Whether every thread hammers the same line (the high-contention
    /// family).
    pub fn is_high_contention(&self) -> bool {
        !matches!(self, Workload::LowContention { .. })
    }

    /// Compile to one simulator program per thread index `0..n`.
    pub fn sim_programs(&self, n: usize) -> Vec<Program> {
        let map = AddressMap;
        (0..n)
            .map(|i| match *self {
                Workload::HighContention { prim } => builders::op_loop(prim, map.shared(), 0),
                Workload::LowContention { prim, work } => {
                    builders::op_loop(prim, map.private(i), work)
                }
                Workload::Diluted { prim, work } => builders::op_loop(prim, map.shared(), work),
                Workload::CasRetryLoop { window, work } => {
                    builders::cas_increment_loop(map.shared(), window, work)
                }
                Workload::MixedReadWrite { writers, prim } => {
                    if i < writers {
                        builders::op_loop(prim, map.shared(), 0)
                    } else {
                        reader_loop(map)
                    }
                }
                Workload::ReadScan {
                    writers,
                    writer_work,
                } => {
                    if i < writers {
                        builders::op_loop(Primitive::Faa, map.shared(), writer_work)
                    } else {
                        scan_reader_loop(map, i)
                    }
                }
                Workload::LockHandoff { shape, cs, noncs } => match shape {
                    LockShape::Tas => builders::tas_lock_loop(map.lock(), cs, noncs),
                    LockShape::Ttas => builders::ttas_lock_loop(map.lock(), cs, noncs),
                    LockShape::Ticket => {
                        builders::ticket_lock_loop(map.lock(), map.lock_serving(), cs, noncs)
                    }
                    LockShape::Mcs => builders::mcs_lock_loop(
                        i,
                        map.lock(),
                        map.mcs_flag_base(),
                        map.mcs_next_base(),
                        cs,
                        noncs,
                    ),
                },
                Workload::FalseSharing { prim } => {
                    let addr = bounce_sim::cache::WordAddr {
                        line: map.shared().line,
                        word: (i % 8) as u8,
                    };
                    builders::op_loop(prim, addr, 0)
                }
                Workload::CasRetryLoopBackoff { window, backoff } => {
                    builders::cas_increment_loop_backoff(map.shared(), window, backoff)
                }
                Workload::MultiLine { prim, lines } => {
                    assert!(lines >= 1, "MultiLine needs at least one line");
                    builders::op_loop(prim, map.shared_aux((i % lines) as u64), 0)
                }
                Workload::Zipf {
                    prim,
                    lines,
                    theta,
                    seed,
                } => crate::zipf::zipf_program(prim, map.shared_aux(0), lines, theta, seed, i, 128),
            })
            .collect()
    }

    /// Derive the model-facing [`Scenario`] this workload realises when
    /// run on `threads` — the one source of truth tying the simulator
    /// program (from [`Workload::sim_programs`]) to the model input.
    ///
    /// Returns `None` for workloads the analytical model does not cover:
    /// `ReadScan` (an L1-eviction stressor for the coherence protocols),
    /// `CasRetryLoopBackoff` (backoff is deliberately outside the
    /// model), `Zipf` (skewed multi-line access), CAS loops with extra
    /// non-window work, and multi-writer mixes. Notably `FalseSharing`
    /// *is* covered: distinct words on one line bounce exactly like one
    /// shared word, so it maps to the high-contention scenario.
    pub fn scenario(&self, threads: &[HwThreadId]) -> Option<Scenario> {
        match *self {
            Workload::HighContention { prim } => Some(Scenario::high_contention(threads, prim)),
            Workload::LowContention { prim, work } => {
                Some(Scenario::low_contention(threads.len(), prim, work as f64))
            }
            Workload::Diluted { prim, work } => Some(Scenario::diluted(threads, prim, work as f64)),
            Workload::CasRetryLoop { window, work: 0 } => {
                Some(Scenario::cas_loop(threads, window as f64))
            }
            Workload::MixedReadWrite { writers, .. } if writers == 1 && !threads.is_empty() => {
                Some(Scenario::mixed_rw(
                    threads[0],
                    &threads[1..],
                    READER_GAP_CYCLES as f64,
                ))
            }
            Workload::LockHandoff { cs, .. } => Some(Scenario::lock_handoff(threads, cs as f64)),
            Workload::FalseSharing { prim } => Some(Scenario::high_contention(threads, prim)),
            Workload::MultiLine { prim, lines } => Some(Scenario::multi_line(threads, prim, lines)),
            Workload::CasRetryLoop { .. }
            | Workload::MixedReadWrite { .. }
            | Workload::ReadScan { .. }
            | Workload::CasRetryLoopBackoff { .. }
            | Workload::Zipf { .. } => None,
        }
    }

    /// The standard workload battery every experiment sweep draws from.
    pub fn standard_battery() -> Vec<Workload> {
        let mut v: Vec<Workload> = Primitive::ALL
            .iter()
            .map(|&prim| Workload::HighContention { prim })
            .collect();
        v.extend(
            Primitive::RMW
                .iter()
                .map(|&prim| Workload::LowContention { prim, work: 0 }),
        );
        v.push(Workload::CasRetryLoop {
            window: 30,
            work: 0,
        });
        v.extend(LockShape::ALL.iter().map(|&shape| Workload::LockHandoff {
            shape,
            cs: 100,
            noncs: 100,
        }));
        v
    }
}

/// Cycles of local work between a [`Workload::MixedReadWrite`] reader's
/// polls. Shared between the simulator's reader loop and the
/// derived [`Scenario::MixedRw`] so the model always sees the gap the
/// sim actually runs.
pub const READER_GAP_CYCLES: u64 = 8;

/// A pure-reader loop over the shared word with a tiny pause so that a
/// reader never floods the event queue when the line is quiescent.
fn reader_loop(map: AddressMap) -> Program {
    Program::new(vec![
        Step::Op {
            prim: Primitive::Load,
            addr: map.shared(),
            operand: Operand::Const(0),
            expected: Operand::Const(0),
        },
        Step::Work(READER_GAP_CYCLES),
        Step::Goto(0),
    ])
    .expect("reader loop is well-formed")
}

/// A reader that loads the shared word and then its private
/// [`AddressMap::scan_conflict`] line (same L1 set), so that with a
/// direct-mapped L1 the shared copy is evicted between reads and every
/// shared load is a fresh directory transaction.
fn scan_reader_loop(map: AddressMap, i: usize) -> Program {
    let load = |addr| Step::Op {
        prim: Primitive::Load,
        addr,
        operand: Operand::Const(0),
        expected: Operand::Const(0),
    };
    Program::new(vec![
        load(map.shared()),
        load(map.scan_conflict(i)),
        Step::Work(8),
        Step::Goto(0),
    ])
    .expect("scan reader loop is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_per_thread_count() {
        for w in Workload::standard_battery() {
            let progs = w.sim_programs(5);
            assert_eq!(progs.len(), 5, "{}", w.label());
        }
    }

    #[test]
    fn low_contention_uses_distinct_lines() {
        let w = Workload::LowContention {
            prim: Primitive::Faa,
            work: 0,
        };
        let progs = w.sim_programs(3);
        let mut lines = std::collections::HashSet::new();
        for p in &progs {
            for s in p.steps() {
                if let Step::Op { addr, .. } = s {
                    lines.insert(addr.line);
                }
            }
        }
        assert_eq!(lines.len(), 3, "one private line per thread");
    }

    #[test]
    fn high_contention_uses_one_line() {
        let w = Workload::HighContention {
            prim: Primitive::Cas,
        };
        let progs = w.sim_programs(4);
        let mut lines = std::collections::HashSet::new();
        for p in &progs {
            for s in p.steps() {
                if let Step::Op { addr, .. } = s {
                    lines.insert(addr.line);
                }
            }
        }
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn scenario_derivation_matches_workload_family() {
        let hw: Vec<HwThreadId> = (0..4).map(HwThreadId).collect();
        let cases: Vec<(Workload, Option<Scenario>)> = vec![
            (
                Workload::HighContention {
                    prim: Primitive::Faa,
                },
                Some(Scenario::high_contention(&hw, Primitive::Faa)),
            ),
            (
                Workload::LowContention {
                    prim: Primitive::Cas,
                    work: 50,
                },
                Some(Scenario::low_contention(4, Primitive::Cas, 50.0)),
            ),
            (
                Workload::Diluted {
                    prim: Primitive::Faa,
                    work: 200,
                },
                Some(Scenario::diluted(&hw, Primitive::Faa, 200.0)),
            ),
            (
                Workload::CasRetryLoop {
                    window: 30,
                    work: 0,
                },
                Some(Scenario::cas_loop(&hw, 30.0)),
            ),
            (
                Workload::MixedReadWrite {
                    writers: 1,
                    prim: Primitive::Faa,
                },
                Some(Scenario::mixed_rw(
                    hw[0],
                    &hw[1..],
                    READER_GAP_CYCLES as f64,
                )),
            ),
            (
                Workload::LockHandoff {
                    shape: LockShape::Mcs,
                    cs: 100,
                    noncs: 100,
                },
                Some(Scenario::lock_handoff(&hw, 100.0)),
            ),
            (
                Workload::FalseSharing {
                    prim: Primitive::Faa,
                },
                Some(Scenario::high_contention(&hw, Primitive::Faa)),
            ),
            (
                Workload::MultiLine {
                    prim: Primitive::Faa,
                    lines: 2,
                },
                Some(Scenario::multi_line(&hw, Primitive::Faa, 2)),
            ),
            // Unmodeled families derive no scenario.
            (
                Workload::CasRetryLoop {
                    window: 30,
                    work: 100,
                },
                None,
            ),
            (
                Workload::MixedReadWrite {
                    writers: 2,
                    prim: Primitive::Faa,
                },
                None,
            ),
            (
                Workload::ReadScan {
                    writers: 1,
                    writer_work: 2000,
                },
                None,
            ),
            (
                Workload::CasRetryLoopBackoff {
                    window: 30,
                    backoff: [16, 64, 256],
                },
                None,
            ),
            (
                Workload::Zipf {
                    prim: Primitive::Faa,
                    lines: 8,
                    theta: 0.9,
                    seed: 1,
                },
                None,
            ),
        ];
        for (w, expect) in cases {
            assert_eq!(w.scenario(&hw), expect, "workload {}", w.label());
        }
    }

    #[test]
    fn lock_scenario_is_shape_independent() {
        // The model predicts the whole ladder at once, so every shape of
        // the same cs derives the same scenario.
        let hw: Vec<HwThreadId> = (0..4).map(HwThreadId).collect();
        let scenarios: Vec<Option<Scenario>> = LockShape::ALL
            .iter()
            .map(|&shape| {
                Workload::LockHandoff {
                    shape,
                    cs: 100,
                    noncs: 100,
                }
                .scenario(&hw)
            })
            .collect();
        assert!(scenarios.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn reader_gap_constant_is_what_the_reader_runs() {
        // The derived scenario's reader gap must be the literal Work
        // step in the compiled reader program.
        let w = Workload::MixedReadWrite {
            writers: 1,
            prim: Primitive::Faa,
        };
        let progs = w.sim_programs(3);
        let reader = &progs[1];
        assert!(reader
            .steps()
            .iter()
            .any(|s| matches!(s, Step::Work(g) if *g == READER_GAP_CYCLES)));
        let hw: Vec<HwThreadId> = (0..3).map(HwThreadId).collect();
        match w.scenario(&hw) {
            Some(Scenario::MixedRw { reader_gap, .. }) => {
                assert_eq!(reader_gap, READER_GAP_CYCLES as f64)
            }
            other => panic!("expected MixedRw scenario, got {other:?}"),
        }
    }

    #[test]
    fn mixed_split_readers_writers() {
        let w = Workload::MixedReadWrite {
            writers: 2,
            prim: Primitive::Faa,
        };
        let progs = w.sim_programs(6);
        let is_writer = |p: &Program| {
            p.steps()
                .iter()
                .any(|s| matches!(s, Step::Op { prim, .. } if prim.is_rmw()))
        };
        assert_eq!(progs.iter().filter(|p| is_writer(p)).count(), 2);
    }

    #[test]
    fn readscan_scanners_touch_shared_plus_private_conflict() {
        let w = Workload::ReadScan {
            writers: 1,
            writer_work: 2000,
        };
        let progs = w.sim_programs(4);
        let map = AddressMap;
        let is_writer = |p: &Program| {
            p.steps()
                .iter()
                .any(|s| matches!(s, Step::Op { prim, .. } if prim.is_rmw()))
        };
        assert_eq!(progs.iter().filter(|p| is_writer(p)).count(), 1);
        // Every scanner loads the shared line plus its own distinct
        // filler line, and that filler maps to the shared line's L1 set.
        let mut fillers = std::collections::HashSet::new();
        for p in progs.iter().skip(1) {
            let lines: Vec<_> = p
                .steps()
                .iter()
                .filter_map(|s| match s {
                    Step::Op { addr, .. } => Some(addr.line),
                    _ => None,
                })
                .collect();
            assert_eq!(lines.len(), 2);
            assert_eq!(lines[0], map.shared().line);
            assert_eq!(lines[1].0 % 64, map.shared().line.0 % 64);
            fillers.insert(lines[1]);
        }
        assert_eq!(fillers.len(), 3, "one filler line per scanner");
    }

    #[test]
    fn labels_are_distinct() {
        let battery = Workload::standard_battery();
        let labels: std::collections::HashSet<_> = battery.iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), battery.len());
    }

    #[test]
    fn contention_classification() {
        assert!(Workload::HighContention {
            prim: Primitive::Faa
        }
        .is_high_contention());
        assert!(!Workload::LowContention {
            prim: Primitive::Faa,
            work: 0
        }
        .is_high_contention());
    }

    #[test]
    fn false_sharing_targets_distinct_words_of_one_line() {
        let w = Workload::FalseSharing {
            prim: Primitive::Faa,
        };
        let progs = w.sim_programs(8);
        let mut lines = std::collections::HashSet::new();
        let mut words = std::collections::HashSet::new();
        for p in &progs {
            for s in p.steps() {
                if let Step::Op { addr, .. } = s {
                    lines.insert(addr.line);
                    words.insert(addr.word);
                }
            }
        }
        assert_eq!(lines.len(), 1, "one physical line");
        assert_eq!(words.len(), 8, "eight logical words");
    }

    #[test]
    fn backoff_loop_compiles_per_thread() {
        let w = Workload::CasRetryLoopBackoff {
            window: 20,
            backoff: [32, 128, 512],
        };
        let progs = w.sim_programs(3);
        assert_eq!(progs.len(), 3);
        assert!(w.label().contains("bo32"));
        assert!(w.is_high_contention());
    }

    #[test]
    fn multiline_distributes_threads_over_lines() {
        let w = Workload::MultiLine {
            prim: Primitive::Faa,
            lines: 3,
        };
        let progs = w.sim_programs(9);
        let mut lines = std::collections::HashMap::new();
        for p in &progs {
            for s in p.steps() {
                if let Step::Op { addr, .. } = s {
                    *lines.entry(addr.line).or_insert(0u32) += 1;
                }
            }
        }
        assert_eq!(lines.len(), 3, "three distinct lines");
        assert!(
            lines.values().all(|&c| c == 3),
            "3 threads per line: {lines:?}"
        );
    }

    #[test]
    fn clone_eq() {
        for w in Workload::standard_battery() {
            let w2 = w.clone();
            assert_eq!(w, w2);
        }
    }

    #[test]
    fn standard_battery_covers_both_regimes() {
        let battery = Workload::standard_battery();
        assert!(battery.iter().any(|w| w.is_high_contention()));
        assert!(battery.iter().any(|w| !w.is_high_contention()));
        assert!(battery
            .iter()
            .any(|w| matches!(w, Workload::LockHandoff { .. })));
    }
}
