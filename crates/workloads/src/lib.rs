//! Workload generators for the two execution settings the paper studies.
//!
//! The abstract names them precisely: "the two common software execution
//! settings that result in high and low contention access on shared
//! memory". Concretely:
//!
//! * **high contention** — every thread applies an atomic primitive to
//!   *one shared cache line* ([`Workload::HighContention`]), optionally
//!   with local work between ops ([`Workload::Diluted`]) or through a
//!   read-compute-CAS retry loop ([`Workload::CasRetryLoop`]);
//! * **low contention** — every thread applies the primitive to its
//!   *own, private* cache line ([`Workload::LowContention`]);
//! * plus the application contexts: reader/writer mixes
//!   ([`Workload::MixedReadWrite`]) and lock critical sections
//!   ([`Workload::LockHandoff`]).
//!
//! A [`Workload`] is pure data (serde-serialisable). It compiles itself
//! into per-thread simulator [programs](bounce_sim::program::Program)
//! via [`Workload::sim_programs`]; the native measurement backend in
//! `bounce-harness` interprets the same spec against real atomics.

#![warn(missing_docs)]

pub mod addr;
pub mod apps;
pub mod spec;
pub mod zipf;

pub use addr::AddressMap;
pub use spec::{LockShape, Workload, READER_GAP_CYCLES};
pub use zipf::{zipf_program, Zipf};
