//! Zipf-skewed multi-line workloads: the realistic middle ground
//! between the paper's two poles.
//!
//! Real applications rarely hammer exactly one line (pure HC) or give
//! every thread a private line (pure LC); they touch a *population* of
//! lines with skewed popularity. This module samples per-thread op
//! sequences from a Zipf(θ) distribution over `L` lines (deterministic
//! per seed), so the simulator sees a contention profile that
//! interpolates between the striped (θ = 0, uniform) and single-line
//! (θ → ∞) regimes.

use bounce_sim::cache::WordAddr;
use bounce_sim::program::{Operand, Program, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bounce_atomics::Primitive;

/// Zipf sampler over ranks `0..n` with exponent `theta ≥ 0`
/// (`theta = 0` is uniform), via the inverse CDF on a precomputed
/// cumulative table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the distribution.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cumulative }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let hi = self.cumulative[k];
        let lo = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        hi - lo
    }

    /// Sample a rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// Build one simulator program for thread `i`: an unrolled loop of
/// `ops_per_loop` ops whose target lines are Zipf(θ)-distributed over
/// `lines` padded lines starting at `base`. Deterministic in
/// `(seed, i)`.
pub fn zipf_program(
    prim: Primitive,
    base: WordAddr,
    lines: usize,
    theta: f64,
    seed: u64,
    thread: usize,
    ops_per_loop: usize,
) -> Program {
    assert!(ops_per_loop >= 1);
    let zipf = Zipf::new(lines, theta);
    let mut rng = StdRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9));
    let mut steps = Vec::with_capacity(ops_per_loop + 1);
    for _ in 0..ops_per_loop {
        let line = zipf.sample(&mut rng) as u64;
        steps.push(Step::Op {
            prim,
            addr: WordAddr {
                line: bounce_sim::cache::LineId(base.line.0 + 128 * line),
                word: base.word,
            },
            operand: Operand::Const(1),
            expected: Operand::Const(0),
        });
    }
    steps.push(Step::Goto(0));
    Program::new(steps).expect("zipf program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_on_rank_zero() {
        let z = Zipf::new(16, 1.2);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(15));
        assert!(z.pmf(0) > 0.3, "head heavy: {}", z.pmf(0));
        let total: f64 = (0..16).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = Zipf::new(8, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let expect = z.pmf(k) * n as f64;
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.05, "rank {k}: {c} vs {expect:.0}");
        }
    }

    #[test]
    fn program_is_deterministic_per_seed_and_thread() {
        let base = WordAddr::of_line(0x8000);
        let a = zipf_program(Primitive::Faa, base, 8, 1.0, 42, 3, 64);
        let b = zipf_program(Primitive::Faa, base, 8, 1.0, 42, 3, 64);
        assert_eq!(a.steps(), b.steps());
        let c = zipf_program(Primitive::Faa, base, 8, 1.0, 42, 4, 64);
        assert_ne!(a.steps(), c.steps(), "different thread, different walk");
    }

    #[test]
    fn program_targets_stay_in_range() {
        let base = WordAddr::of_line(0x8000);
        let p = zipf_program(Primitive::Swap, base, 4, 0.8, 1, 0, 128);
        for s in p.steps() {
            if let Step::Op { addr, .. } = s {
                let off = addr.line.0 - 0x8000;
                assert_eq!(off % 128, 0);
                assert!(off / 128 < 4, "line index out of range");
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_lines() {
        let _ = Zipf::new(0, 1.0);
    }
}
