//! Scratch probe: print the E13 protocol-ablation table at both scales.
use bounce_harness::experiments::{protocol_ablation, ExpCtx, Machine};

fn main() {
    for (label, ctx) in [
        ("quick n=8", ExpCtx::quick()),
        ("full n=16", ExpCtx::full()),
    ] {
        let t = protocol_ablation(ctx, Machine::E5).expect("E13 probe failed");
        println!("== {label} ==\n{}", t.to_markdown());
    }
}
