//! Best-effort RAPL energy reading (`/sys/class/powercap`).
//!
//! The paper reads package energy through RAPL. On hosts that expose
//! `intel-rapl` powercap domains we do the same; everywhere else the
//! native backend simply reports no energy (the simulator backend has
//! its own accounting).

use std::fs;
use std::path::{Path, PathBuf};

/// A handle on every readable RAPL package domain.
#[derive(Debug, Clone)]
pub struct Rapl {
    domains: Vec<PathBuf>,
}

impl Rapl {
    /// Discover RAPL domains under the host's powercap root; `None`
    /// when the host exposes none that we can read. Callers degrade
    /// gracefully: a `None` here means energy columns read "n/a" and
    /// the run continues (see [`crate::sweeps::measurements_table`]).
    pub fn discover() -> Option<Rapl> {
        Self::discover_at(Path::new("/sys/class/powercap"))
    }

    /// [`Rapl::discover`] against an arbitrary sysfs root (injectable
    /// for tests: point it at a fake tree).
    pub fn discover_at(base: &Path) -> Option<Rapl> {
        let mut domains = Vec::new();
        let entries = fs::read_dir(base).ok()?;
        for e in entries.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            // Package-level domains are "intel-rapl:<n>"; subdomains
            // ("intel-rapl:<n>:<m>") would double-count.
            if name.starts_with("intel-rapl:") && name.matches(':').count() == 1 {
                let p = e.path().join("energy_uj");
                if fs::read_to_string(&p).is_ok() {
                    domains.push(p);
                }
            }
        }
        domains.sort();
        if domains.is_empty() {
            None
        } else {
            Some(Rapl { domains })
        }
    }

    /// Total energy counter across domains, microjoules.
    pub fn read_uj(&self) -> Option<u64> {
        let mut total = 0u64;
        for d in &self.domains {
            let s = fs::read_to_string(d).ok()?;
            total = total.checked_add(s.trim().parse().ok()?)?;
        }
        Some(total)
    }

    /// Number of readable domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }
}

/// Energy in joules between two counter reads, handling a single
/// wraparound pessimistically by returning `None` (callers re-measure).
pub fn delta_j(before_uj: u64, after_uj: u64) -> Option<f64> {
    if after_uj >= before_uj {
        Some((after_uj - before_uj) as f64 * 1e-6)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_does_not_panic() {
        // Container hosts usually have no RAPL; both outcomes are fine.
        if let Some(r) = Rapl::discover() {
            assert!(r.num_domains() >= 1);
            // Reading twice must be monotone (or None).
            if let (Some(a), Some(b)) = (r.read_uj(), r.read_uj()) {
                assert!(b >= a);
            }
        }
    }

    #[test]
    fn delta_handles_wrap() {
        assert_eq!(delta_j(100, 1_000_100), Some(1.0000));
        assert_eq!(delta_j(200, 100), None);
        assert_eq!(delta_j(5, 5), Some(0.0));
    }

    fn fake_domain(root: &Path, name: &str, energy: Option<&str>) {
        let d = root.join(name);
        fs::create_dir_all(&d).unwrap();
        if let Some(e) = energy {
            fs::write(d.join("energy_uj"), e).unwrap();
        }
    }

    #[test]
    fn discover_at_reads_fake_powercap_tree() {
        let root = std::env::temp_dir().join(format!("rapl-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        // Two package domains, one subdomain (must be excluded, it
        // would double-count), one unreadable package, assorted junk.
        fake_domain(&root, "intel-rapl:0", Some("123456"));
        fake_domain(&root, "intel-rapl:1", Some("1000"));
        fake_domain(&root, "intel-rapl:0:0", Some("999999"));
        fake_domain(&root, "intel-rapl:2", None);
        fake_domain(&root, "dtpm", Some("5"));
        let r = Rapl::discover_at(&root).expect("two readable package domains");
        assert_eq!(r.num_domains(), 2);
        assert_eq!(r.read_uj(), Some(124_456));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn discover_at_missing_or_empty_root_is_none() {
        let root = std::env::temp_dir().join(format!("rapl-none-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        // Missing root: the host has no powercap at all.
        assert!(Rapl::discover_at(&root).is_none());
        // Present but without rapl domains: same graceful None.
        fs::create_dir_all(root.join("dtpm")).unwrap();
        assert!(Rapl::discover_at(&root).is_none());
        fs::remove_dir_all(&root).unwrap();
    }
}
