//! The simulator backend: workload → engine → [`Measurement`].

use crate::measurement::{Backend, Measurement};
use bounce_sim::{
    Engine, FabricFaultConfig, FaultConfig, RetryPolicy, RunLength, SimConfig, SimError, SimParams,
};
use bounce_topo::{HwThreadId, MachineTopology, Placement};
use bounce_workloads::Workload;

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimRunConfig {
    /// Protocol/energy parameters.
    pub params: SimParams,
    /// Simulated duration in cycles (warmup is 10% on top).
    pub duration_cycles: u64,
    /// Thread placement policy.
    pub placement: Placement,
}

impl SimRunConfig {
    /// Defaults for a machine: its matching parameter preset, a 2M-cycle
    /// window, packed placement.
    ///
    /// The home directory slice is pinned to slice 0 (the equivalent of
    /// the paper allocating the contended variable on NUMA node 0): with
    /// a hashed home the *same* workload can land its one contended line
    /// on either socket, which changes absolute numbers run to run and
    /// hides the placement effects the experiments sweep.
    pub fn for_machine(topo: &MachineTopology) -> Self {
        let mut params = SimParams::for_machine(topo);
        params.home_policy = bounce_sim::HomePolicy::Fixed(0);
        SimRunConfig {
            params,
            duration_cycles: 2_000_000,
            placement: Placement::Packed,
        }
    }

    /// Shrink the duration (used by `quick` test modes).
    pub fn quick(mut self) -> Self {
        self.duration_cycles = 300_000;
        self
    }

    /// Override the coherence protocol (the ablation experiments sweep
    /// this; everything else keeps the machine's native protocol).
    pub fn with_protocol(mut self, protocol: bounce_sim::CoherenceKind) -> Self {
        self.params.protocol = protocol;
        self
    }

    /// Inject faults (the preemption experiment sweeps this; everything
    /// else runs fault-free).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.params.faults = faults;
        self
    }

    /// Inject fabric faults — directory NACKs, link congestion windows,
    /// message jitter (the degraded-fabric experiment sweeps this; the
    /// default injects nothing and stays bit-identical).
    pub fn with_fabric_faults(mut self, fabric: FabricFaultConfig) -> Self {
        self.params.fabric = fabric;
        self
    }

    /// Override the NACK retry policy (only consulted when fabric
    /// faults actually refuse requests).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.params.retry = retry;
        self
    }

    /// Override the run-length policy (`Fixed` replays the historical
    /// full-budget behaviour; `Adaptive` terminates early on batch-means
    /// convergence).
    pub fn with_run_length(mut self, run_length: RunLength) -> Self {
        self.params.run_length = run_length;
        self
    }
}

/// Run `workload` with `n` threads on the simulated `topo` and reduce to
/// a [`Measurement`].
///
/// # Panics
/// Panics if the simulation trips the forward-progress watchdog; use
/// [`try_sim_measure`] to get the structured [`SimError`] instead.
pub fn sim_measure(
    topo: &MachineTopology,
    workload: &Workload,
    n: usize,
    cfg: &SimRunConfig,
) -> Measurement {
    try_sim_measure(topo, workload, n, cfg).unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Like [`sim_measure`] but surfacing watchdog diagnoses as a
/// [`SimError`] instead of panicking.
pub fn try_sim_measure(
    topo: &MachineTopology,
    workload: &Workload,
    n: usize,
    cfg: &SimRunConfig,
) -> Result<Measurement, SimError> {
    let hw = cfg.placement.assign(topo, n);
    try_sim_measure_pinned(topo, workload, &hw, cfg)
}

/// Like [`sim_measure`] but with an explicit hardware-thread assignment
/// (used by the placement experiment).
///
/// # Panics
/// Panics if the simulation trips the forward-progress watchdog; use
/// [`try_sim_measure_pinned`] for the non-panicking form.
pub fn sim_measure_pinned(
    topo: &MachineTopology,
    workload: &Workload,
    hw: &[HwThreadId],
    cfg: &SimRunConfig,
) -> Measurement {
    try_sim_measure_pinned(topo, workload, hw, cfg)
        .unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// [`try_sim_measure`] with an explicit hardware-thread assignment.
pub fn try_sim_measure_pinned(
    topo: &MachineTopology,
    workload: &Workload,
    hw: &[HwThreadId],
    cfg: &SimRunConfig,
) -> Result<Measurement, SimError> {
    let n = hw.len();
    // Typed validation before construction: `Engine::new` panics on a
    // bad config, campaigns want the field-naming error instead.
    cfg.params
        .validate()
        .map_err(|error| SimError::InvalidConfig { error })?;
    let sim_cfg = SimConfig::new(cfg.params.clone(), cfg.duration_cycles);
    let mut engine = Engine::new(topo, sim_cfg);
    let programs = workload.sim_programs(n);
    for (&h, p) in hw.iter().zip(programs) {
        engine.add_thread(h, p);
    }
    let report = engine.try_run()?;
    Ok(Measurement {
        workload: workload.label(),
        machine: topo.name.clone(),
        backend: Backend::Sim,
        n,
        throughput_ops_per_sec: report.throughput_ops_per_sec(),
        goodput_ops_per_sec: report.goodput_ops_per_sec(),
        cond_attempts_per_sec: report.cond_attempts_per_sec(),
        failure_rate: report.failure_rate(),
        mean_latency_cycles: report.mean_latency_cycles(),
        p50_latency_cycles: report.p50_latency_cycles,
        p99_latency_cycles: report.p99_latency_cycles,
        jain: report.jain_fairness(),
        energy_per_op_nj: Some(report.energy_per_op_nj()),
        transfers_by_domain: Some(report.transfers_by_domain),
        ops_by_prim: Some({
            let mut acc = [0u64; 6];
            for t in &report.threads {
                for (a, b) in acc.iter_mut().zip(t.ops_by_prim) {
                    *a += b;
                }
            }
            acc
        }),
        per_thread_ops: report.threads.iter().map(|t| t.ops).collect(),
    })
}

/// Repeat a measurement across RNG seeds (only the `Random` arbitration
/// policy and hashed home salts consume randomness) and summarise.
#[derive(Debug, Clone)]
pub struct SeededSummary {
    /// Per-seed measurements.
    pub runs: Vec<Measurement>,
    /// Mean throughput, ops/s.
    pub mean_throughput: f64,
    /// Coefficient of variation of throughput across seeds.
    pub throughput_cv: f64,
    /// Mean Jain fairness across seeds.
    pub mean_jain: f64,
}

/// Run `workload` once per seed and summarise throughput stability.
///
/// # Panics
/// Panics if any seeded run trips the forward-progress watchdog; use
/// [`try_sim_measure_seeds`] for the non-panicking form.
pub fn sim_measure_seeds(
    topo: &MachineTopology,
    workload: &Workload,
    n: usize,
    cfg: &SimRunConfig,
    seeds: &[u64],
) -> SeededSummary {
    try_sim_measure_seeds(topo, workload, n, cfg, seeds)
        .unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Like [`sim_measure_seeds`] but surfacing the first failing seed's
/// [`SimError`] instead of panicking mid-sweep.
pub fn try_sim_measure_seeds(
    topo: &MachineTopology,
    workload: &Workload,
    n: usize,
    cfg: &SimRunConfig,
    seeds: &[u64],
) -> Result<SeededSummary, SimError> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs: Vec<Measurement> = crate::parallel::par_map(seeds, |&seed| {
        let mut c = cfg.clone();
        c.params.seed = seed;
        try_sim_measure(topo, workload, n, &c)
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let xs: Vec<f64> = runs.iter().map(|m| m.throughput_ops_per_sec).collect();
    let js: Vec<f64> = runs.iter().map(|m| m.jain).collect();
    Ok(SeededSummary {
        mean_throughput: bounce_core::stats::mean(&xs),
        throughput_cv: bounce_core::stats::cv(&xs),
        mean_jain: bounce_core::stats::mean(&js),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bounce_atomics::Primitive;
    use bounce_topo::presets;

    #[test]
    fn hc_measurement_has_all_metrics() {
        let topo = presets::tiny_test_machine();
        let cfg = SimRunConfig::for_machine(&topo).quick();
        let m = sim_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            4,
            &cfg,
        );
        assert_eq!(m.n, 4);
        assert_eq!(m.backend, Backend::Sim);
        assert!(m.throughput_ops_per_sec > 0.0);
        assert!(m.mean_latency_cycles > 0.0);
        assert!(m.p99_latency_cycles >= m.p50_latency_cycles);
        assert!(m.energy_per_op_nj.unwrap() > 0.0);
        assert!(m.total_transfers().unwrap() > 0);
        assert_eq!(m.per_thread_ops.len(), 4);
    }

    #[test]
    fn lc_measurement_scales() {
        let topo = presets::tiny_test_machine();
        let cfg = SimRunConfig::for_machine(&topo).quick();
        let w = Workload::LowContention {
            prim: Primitive::Faa,
            work: 0,
        };
        let m1 = sim_measure(&topo, &w, 1, &cfg);
        let m4 = sim_measure(&topo, &w, 4, &cfg);
        assert!(m4.throughput_ops_per_sec > 3.0 * m1.throughput_ops_per_sec);
        assert_eq!(m4.total_transfers(), Some(0));
    }

    #[test]
    fn cas_loop_reports_failures() {
        let topo = presets::tiny_test_machine();
        let cfg = SimRunConfig::for_machine(&topo).quick();
        let m = sim_measure(
            &topo,
            &Workload::CasRetryLoop {
                window: 30,
                work: 0,
            },
            4,
            &cfg,
        );
        assert!(m.failure_rate > 0.0, "contended CAS loop must fail");
        assert!(m.goodput_ops_per_sec < m.throughput_ops_per_sec);
    }

    #[test]
    fn seeded_runs_stable_under_random_arbitration() {
        let topo = presets::tiny_test_machine();
        let mut cfg = SimRunConfig::for_machine(&topo).quick();
        cfg.params.arbitration = bounce_sim::ArbitrationPolicy::Random;
        let s = sim_measure_seeds(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            4,
            &cfg,
            &[1, 2, 3, 4, 5],
        );
        assert_eq!(s.runs.len(), 5);
        assert!(s.mean_throughput > 0.0);
        // Random winner selection barely moves total throughput.
        assert!(s.throughput_cv < 0.1, "cv {:.3}", s.throughput_cv);
        assert!(s.mean_jain > 0.9);
    }

    #[test]
    fn adaptive_run_length_still_measures() {
        let topo = presets::tiny_test_machine();
        let cfg = SimRunConfig::for_machine(&topo)
            .quick()
            .with_run_length(RunLength::adaptive());
        let m = sim_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            4,
            &cfg,
        );
        assert!(m.throughput_ops_per_sec > 0.0);
        assert!(m.mean_latency_cycles > 0.0);
    }

    #[test]
    fn try_seeded_runs_return_ok() {
        let topo = presets::tiny_test_machine();
        let cfg = SimRunConfig::for_machine(&topo).quick();
        let s = try_sim_measure_seeds(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            2,
            &cfg,
            &[1, 2],
        )
        .expect("healthy config must not error");
        assert_eq!(s.runs.len(), 2);
    }

    #[test]
    #[should_panic]
    fn seeded_runs_need_seeds() {
        let topo = presets::tiny_test_machine();
        let cfg = SimRunConfig::for_machine(&topo).quick();
        let _ = sim_measure_seeds(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            2,
            &cfg,
            &[],
        );
    }

    #[test]
    fn invalid_config_surfaces_typed_error() {
        let topo = presets::tiny_test_machine();
        let mut cfg = SimRunConfig::for_machine(&topo).quick();
        cfg.params.fabric.nack_per_mille = 5000;
        let err = try_sim_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            2,
            &cfg,
        )
        .expect_err("out-of-range NACK rate must be rejected, not panic");
        let msg = err.to_string();
        assert!(msg.contains("fabric.nack_per_mille"), "{msg}");
    }

    #[test]
    fn fabric_faults_flow_through_measurement() {
        let topo = presets::tiny_test_machine();
        let cfg = SimRunConfig::for_machine(&topo)
            .quick()
            .with_fabric_faults(FabricFaultConfig::moderate())
            .with_retry_policy(RetryPolicy::patient());
        let m = sim_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            4,
            &cfg,
        );
        assert!(m.throughput_ops_per_sec > 0.0);
        assert!(m.p99_latency_cycles >= m.p50_latency_cycles);
    }

    #[test]
    fn pinned_variant_respects_assignment() {
        let topo = presets::dual_socket_small();
        let cfg = SimRunConfig::for_machine(&topo).quick();
        let hw = Placement::Scattered.assign(&topo, 4);
        let m = sim_measure_pinned(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Swap,
            },
            &hw,
            &cfg,
        );
        // Scattered over two sockets: cross-socket transfers must appear.
        let t = m.transfers_by_domain.unwrap();
        assert!(t[4] > 0, "cross-socket transfers expected: {t:?}");
    }
}
