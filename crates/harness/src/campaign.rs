//! The fit-and-validate campaign: the complete Fig 7 workflow — measure
//! a sweep, fit Θ on a training subset, validate throughput *and*
//! latency on the full sweep — as a reusable API.

use crate::measurement::Measurement;
use crate::modeltime::predict_timed;
use crate::simrun::SimRunConfig;
use bounce_atomics::Primitive;
use bounce_core::fit::{fit_transfer_costs, FitReport, ScenarioObservation};
use bounce_core::validate::{mape, validated_rows, ValidationMetric, ValidationRow};
use bounce_core::{Model, ModelParams, Prediction, Scenario};
use bounce_topo::{MachineTopology, Placement, PlacementOrder};
use bounce_workloads::Workload;

/// Which sweep points train the fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainSplit {
    /// Every point trains (resubstitution — reports optimistic error).
    All,
    /// Every second multi-thread point trains; the rest are held out.
    Alternate,
}

/// Result of a fit-and-validate campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The fitted parameters and training residual.
    pub fit: FitReport,
    /// Per-point throughput validation (all multi-thread points).
    pub throughput_rows: Vec<ValidationRow>,
    /// Per-point mean-latency validation (all multi-thread points).
    pub latency_rows: Vec<ValidationRow>,
    /// The raw measurements, in sweep order.
    pub measurements: Vec<Measurement>,
}

impl Campaign {
    /// Throughput MAPE over the full sweep, percent.
    pub fn throughput_mape(&self) -> f64 {
        mape(&self.throughput_rows)
    }

    /// Latency MAPE over the full sweep, percent.
    pub fn latency_mape(&self) -> f64 {
        mape(&self.latency_rows)
    }
}

/// Run the full campaign: measure the HC sweep for `prim` at every
/// `ns`, fit the transfer costs on the chosen split, and validate both
/// throughput and mean latency against the fitted model.
///
/// # Panics
/// Panics if any sweep point trips the forward-progress watchdog; use
/// [`try_fit_and_validate`] for the structured error.
pub fn fit_and_validate(
    topo: &MachineTopology,
    prim: Primitive,
    ns: &[usize],
    cfg: &SimRunConfig,
    initial: &ModelParams,
    split: TrainSplit,
) -> Campaign {
    try_fit_and_validate(topo, prim, ns, cfg, initial, split)
        .unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// [`fit_and_validate`] surfacing watchdog diagnoses as a
/// [`bounce_sim::SimError`] instead of panicking.
pub fn try_fit_and_validate(
    topo: &MachineTopology,
    prim: Primitive,
    ns: &[usize],
    cfg: &SimRunConfig,
    initial: &ModelParams,
    split: TrainSplit,
) -> Result<Campaign, bounce_sim::SimError> {
    let w = Workload::HighContention { prim };
    let order = PlacementOrder::new(cfg.placement, topo);
    let measurements: Vec<Measurement> =
        crate::parallel::par_map(ns, |&n| crate::simrun::try_sim_measure(topo, &w, n, cfg))
            .into_iter()
            .collect::<Result<_, _>>()?;
    let multi: Vec<&Measurement> = measurements.iter().filter(|m| m.n >= 2).collect();
    // Each point's model input is the scenario the workload itself
    // derives — the same source of truth the simulator programs come
    // from.
    let scenario_of = |m: &Measurement| -> Scenario {
        w.scenario(order.threads_of(m.n))
            .expect("high contention maps to a scenario")
    };
    let train: Vec<ScenarioObservation> = multi
        .iter()
        .enumerate()
        .filter(|(i, _)| match split {
            TrainSplit::All => true,
            TrainSplit::Alternate => i % 2 == 0,
        })
        .map(|(_, m)| ScenarioObservation::new(scenario_of(m), m.throughput_ops_per_sec))
        .collect();
    let fit = fit_transfer_costs(topo, &train, initial);
    let model = Model::new(topo.clone(), fit.params.clone());
    let predicted: Vec<(Scenario, Prediction)> = multi
        .iter()
        .map(|m| {
            let s = scenario_of(m);
            let p = predict_timed(&model, &s);
            (s, p)
        })
        .collect();
    let triples = |measured: &dyn Fn(&Measurement) -> f64| -> Vec<(Scenario, Prediction, f64)> {
        predicted
            .iter()
            .zip(&multi)
            .map(|((s, p), m)| (s.clone(), *p, measured(m)))
            .collect()
    };
    let throughput_rows = validated_rows(
        &triples(&|m| m.throughput_ops_per_sec),
        ValidationMetric::Throughput,
    );
    let latency_rows = validated_rows(
        &triples(&|m| m.mean_latency_cycles),
        ValidationMetric::LatencyCycles,
    );
    Ok(Campaign {
        fit,
        throughput_rows,
        latency_rows,
        measurements,
    })
}

/// Convenience default: packed placement, FIFO arbitration, pinned home.
pub fn default_cfg(topo: &MachineTopology, duration_cycles: u64) -> SimRunConfig {
    let mut cfg = SimRunConfig::for_machine(topo);
    cfg.params.arbitration = bounce_sim::ArbitrationPolicy::Fifo;
    cfg.duration_cycles = duration_cycles;
    cfg.placement = Placement::Packed;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use bounce_topo::presets;

    #[test]
    fn campaign_on_tiny_machine_converges() {
        let topo = presets::tiny_test_machine();
        let cfg = default_cfg(&topo, 400_000);
        let c = fit_and_validate(
            &topo,
            Primitive::Faa,
            &[1, 2, 4, 6, 8],
            &cfg,
            &ModelParams::tiny_default(),
            TrainSplit::All,
        );
        assert_eq!(c.measurements.len(), 5);
        assert_eq!(c.throughput_rows.len(), 4, "n=1 excluded");
        assert!(
            c.throughput_mape() < 30.0,
            "throughput MAPE {:.1}%",
            c.throughput_mape()
        );
        // Latency validation exists and is finite.
        assert_eq!(c.latency_rows.len(), 4);
        assert!(c.latency_rows.iter().all(|r| r.measured > 0.0));
        c.fit.params.validate().unwrap();
    }

    #[test]
    fn holdout_split_trains_on_half() {
        let topo = presets::tiny_test_machine();
        let cfg = default_cfg(&topo, 300_000);
        let c = fit_and_validate(
            &topo,
            Primitive::Swap,
            &[2, 4, 6, 8],
            &cfg,
            &ModelParams::tiny_default(),
            TrainSplit::Alternate,
        );
        // 4 multi-thread points; alternate split trains on 2; all 4
        // validated.
        assert_eq!(c.throughput_rows.len(), 4);
        assert!(c.throughput_mape().is_finite());
    }
}
