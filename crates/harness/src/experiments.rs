//! The experiment registry: every reconstructed table and figure of the
//! evaluation (see DESIGN.md for the E-number ↔ figure mapping), each as
//! a function producing a [`Table`].
//!
//! All experiments run on the simulator backend configured as one of
//! the two paper machines. `ExpCtx::quick` shrinks sweeps and durations
//! for tests; the `repro` binary runs the full versions.

use crate::measurement::Measurement;
use crate::modeltime::predict_timed;
use crate::report::{fmt_f64, Table};
use crate::simrun::{try_sim_measure, try_sim_measure_pinned, SimRunConfig};
use bounce_atomics::Primitive;
use bounce_core::fairness::{predict_jain, ArbitrationKind};
use bounce_core::{BouncingModel, ModelParams, Scenario};
use bounce_sim::{
    ArbitrationPolicy, CoherenceKind, FabricFaultConfig, FaultConfig, RetryPolicy, SimError,
    SimParams,
};
use bounce_topo::{presets, HwThreadId, Interconnect, MachineTopology, Placement, PlacementOrder};
use bounce_workloads::{LockShape, Workload};
use std::fmt;

/// An experiment failure: a watchdog-diagnosed simulation error or a
/// caught panic, each with enough context to name the failing point.
#[derive(Debug)]
pub enum ExpError {
    /// A simulation point tripped the forward-progress watchdog.
    Sim {
        /// The failing point (workload, thread count, machine).
        context: String,
        /// The watchdog's diagnosis (boxed: `SimError::NoProgress`
        /// carries per-thread and per-line diagnostics).
        source: Box<SimError>,
    },
    /// An experiment panicked; the sweep's remaining experiments were
    /// unaffected (see [`crate::parallel`]).
    Panic {
        /// The failing experiment.
        context: String,
        /// The panic payload.
        payload: String,
    },
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Sim { context, source } => write!(f, "{context}: {source}"),
            ExpError::Panic { context, payload } => write!(f, "{context}: panicked: {payload}"),
        }
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExpError::Sim { source, .. } => Some(source),
            ExpError::Panic { .. } => None,
        }
    }
}

/// Result of one experiment: its table, or a contextualised failure.
pub type ExpResult = Result<Table, ExpError>;

/// [`try_sim_measure`] with the failing point's config attached.
pub(crate) fn measure(
    topo: &MachineTopology,
    w: &Workload,
    n: usize,
    cfg: &SimRunConfig,
) -> Result<Measurement, ExpError> {
    try_sim_measure(topo, w, n, cfg).map_err(|e| ExpError::Sim {
        context: format!("{} n={} on {}", w.label(), n, topo.name),
        source: Box::new(e),
    })
}

/// [`try_sim_measure_pinned`] with the failing point's config attached.
fn measure_pinned(
    topo: &MachineTopology,
    w: &Workload,
    hw: &[HwThreadId],
    cfg: &SimRunConfig,
) -> Result<Measurement, ExpError> {
    try_sim_measure_pinned(topo, w, hw, cfg).map_err(|e| ExpError::Sim {
        context: format!("{} n={} (pinned) on {}", w.label(), hw.len(), topo.name),
        source: Box::new(e),
    })
}

/// The two paper testbeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// Intel Xeon E5-2695 v4 (2 × 18 × 2).
    E5,
    /// Intel Xeon Phi 7290 (36 tiles × 2 × 4).
    Knl,
}

impl Machine {
    /// Both machines.
    pub const ALL: [Machine; 2] = [Machine::E5, Machine::Knl];

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            Machine::E5 => "e5",
            Machine::Knl => "knl",
        }
    }

    /// The topology preset.
    pub fn topo(&self) -> MachineTopology {
        match self {
            Machine::E5 => presets::xeon_e5_2695_v4(),
            Machine::Knl => presets::xeon_phi_7290(),
        }
    }

    /// The simulator parameter preset.
    pub fn sim_params(&self) -> SimParams {
        match self {
            Machine::E5 => SimParams::e5(),
            Machine::Knl => SimParams::knl(),
        }
    }

    /// The model parameter defaults.
    pub fn model_params(&self) -> ModelParams {
        match self {
            Machine::E5 => ModelParams::e5_default(),
            Machine::Knl => ModelParams::knl_default(),
        }
    }

    /// The analytic model over this machine's topology preset and
    /// default parameters — the one every experiment predicts through.
    pub fn model(&self) -> BouncingModel {
        BouncingModel::new(self.topo(), self.model_params())
    }

    /// The thread-count sweep used by the contention figures.
    pub fn sweep_ns(&self, quick: bool) -> Vec<usize> {
        if quick {
            return vec![1, 2, 4, 8];
        }
        match self {
            Machine::E5 => vec![1, 2, 4, 8, 12, 18, 24, 36, 48, 60, 72],
            Machine::Knl => vec![1, 2, 4, 8, 16, 32, 64, 72, 144, 288],
        }
    }
}

/// Experiment context: sweep/duration scaling and optional protocol
/// override.
#[derive(Debug, Clone, Copy)]
pub struct ExpCtx {
    /// Short sweeps and windows (tests).
    pub quick: bool,
    /// Run every experiment under this coherence protocol instead of
    /// each machine's native one (`None` = native; this is what
    /// `repro --protocol` sets).
    pub protocol: Option<CoherenceKind>,
    /// Fixed full-budget run lengths everywhere (`repro --exact`):
    /// byte-identical to the historical output. The default is adaptive
    /// run lengths — early termination on batch-means convergence.
    pub exact: bool,
    /// Inject this fabric fault config into every run (`None` = the
    /// all-zero default, bit-identical to fault-free; this is what
    /// `repro --fabric-faults` sets). The degraded-fabric experiment
    /// (e15) sweeps its own severity axis regardless of this override.
    pub fabric: Option<FabricFaultConfig>,
    /// NACK retry policy for every run (`None` = the default backoff
    /// ladder; `repro --retry-policy` sets this). Only consulted when
    /// fabric faults actually refuse requests.
    pub retry: Option<RetryPolicy>,
}

impl ExpCtx {
    /// Full-scale context.
    pub fn full() -> Self {
        ExpCtx {
            quick: false,
            protocol: None,
            exact: false,
            fabric: None,
            retry: None,
        }
    }

    /// Quick context for tests.
    pub fn quick() -> Self {
        ExpCtx {
            quick: true,
            protocol: None,
            exact: false,
            fabric: None,
            retry: None,
        }
    }

    /// Override the coherence protocol for every run in this context.
    pub fn with_protocol(mut self, protocol: CoherenceKind) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// Force fixed full-budget run lengths (the `--exact` mode).
    pub fn with_exact(mut self, exact: bool) -> Self {
        self.exact = exact;
        self
    }

    /// Inject fabric faults into every run in this context.
    pub fn with_fabric_faults(mut self, fabric: FabricFaultConfig) -> Self {
        self.fabric = Some(fabric);
        self
    }

    /// Override the NACK retry policy for every run in this context.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    pub(crate) fn run_cfg(&self, machine: Machine, _topo: &MachineTopology) -> SimRunConfig {
        let mut cfg = SimRunConfig {
            params: machine.sim_params(),
            duration_cycles: if self.quick { 300_000 } else { 2_000_000 },
            placement: Placement::Packed,
        };
        // FIFO arbitration for every throughput/latency experiment —
        // the fairness experiment (fig4) varies the policy itself — and
        // a pinned home slice (the paper's NUMA-node-0 allocation).
        cfg.params.arbitration = ArbitrationPolicy::Fifo;
        cfg.params.home_policy = bounce_sim::HomePolicy::Fixed(0);
        if !self.exact {
            cfg.params.run_length = bounce_sim::RunLength::adaptive();
        }
        if let Some(p) = self.protocol {
            cfg.params.protocol = p;
        }
        if let Some(f) = self.fabric {
            cfg.params.fabric = f;
        }
        if let Some(r) = self.retry {
            cfg.params.retry = r;
        }
        cfg
    }
}

fn mops(x: f64) -> String {
    fmt_f64(x / 1e6)
}

/// Table 1 (E1): the machine configurations.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 (E1): machine configurations",
        &[
            "machine",
            "sockets",
            "cores",
            "hw_threads",
            "smt",
            "freq_ghz",
            "interconnect",
            "llc",
        ],
    );
    for m in Machine::ALL {
        let topo = m.topo();
        let inter = match topo.interconnect {
            Interconnect::Ring { .. } => "ring+QPI",
            Interconnect::Mesh { .. } => "2D mesh",
            Interconnect::Uniform { .. } => "uniform",
        };
        let llc = topo
            .caches
            .last()
            .map(|c| format!("{} {}KiB", c.name, c.size_bytes / 1024))
            .unwrap_or_default();
        t.push(vec![
            topo.name.clone(),
            topo.num_sockets().to_string(),
            topo.num_cores().to_string(),
            topo.num_threads().to_string(),
            topo.smt_ways().to_string(),
            format!("{}", topo.freq_ghz),
            inter.to_string(),
            llc,
        ]);
    }
    t
}

/// Table 2 (E2): uncontended (single-thread, own line) latency of each
/// primitive, in cycles, on both machines.
pub fn table2(ctx: ExpCtx) -> ExpResult {
    let mut t = Table::new(
        "Table 2 (E2): uncontended latency of atomic primitives (cycles)",
        &["machine", "primitive", "latency_cycles", "throughput_mops"],
    );
    for m in Machine::ALL {
        let topo = m.topo();
        let cfg = ctx.run_cfg(m, &topo);
        for prim in Primitive::ALL {
            let meas = measure(&topo, &Workload::LowContention { prim, work: 0 }, 1, &cfg)?;
            t.push(vec![
                m.label().into(),
                prim.label().into(),
                fmt_f64(meas.mean_latency_cycles),
                mops(meas.throughput_ops_per_sec),
            ]);
        }
    }
    Ok(t)
}

/// Fig 1 (E3): high-contention throughput vs thread count, one column
/// per primitive.
pub fn fig1(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let mut t = Table::new(
        format!(
            "Fig 1 (E3): HC throughput vs threads (Mops/s) — {}",
            topo.name
        ),
        &["n", "load", "store", "swap", "tas", "faa", "cas"],
    );
    for n in machine.sweep_ns(ctx.quick) {
        let mut row = vec![n.to_string()];
        for prim in Primitive::ALL {
            let meas = measure(&topo, &Workload::HighContention { prim }, n, &cfg)?;
            row.push(mops(meas.throughput_ops_per_sec));
        }
        t.push(row);
    }
    Ok(t)
}

/// Fig 2 (E4): high-contention mean per-op latency vs thread count.
pub fn fig2(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let mut t = Table::new(
        format!("Fig 2 (E4): HC latency vs threads (cycles) — {}", topo.name),
        &["n", "swap", "tas", "faa", "cas", "cas_p99"],
    );
    for n in machine.sweep_ns(ctx.quick) {
        let mut row = vec![n.to_string()];
        let mut cas_p99 = 0.0;
        for prim in Primitive::RMW {
            let meas = measure(&topo, &Workload::HighContention { prim }, n, &cfg)?;
            row.push(fmt_f64(meas.mean_latency_cycles));
            if prim == Primitive::Cas {
                cas_p99 = meas.p99_latency_cycles;
            }
        }
        row.push(fmt_f64(cas_p99));
        t.push(row);
    }
    Ok(t)
}

/// Fig 3 (E5): CAS retry-loop success/failure vs thread count, with the
/// model's predicted failure rate.
pub fn fig3(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let model = machine.model();
    let order = PlacementOrder::new(Placement::Packed, &topo);
    let window = 30u64;
    let mut t = Table::new(
        format!(
            "Fig 3 (E5): CAS retry loop (window={window}cy) vs threads — {}",
            topo.name
        ),
        &[
            "n",
            "attempts_mops",
            "goodput_mops",
            "fail_rate",
            "model_fail_rate",
        ],
    );
    for n in machine.sweep_ns(ctx.quick) {
        let w = Workload::CasRetryLoop { window, work: 0 };
        let meas = measure(&topo, &w, n, &cfg)?;
        let scenario = w
            .scenario(order.threads_of(n))
            .expect("plain CAS retry loop maps to a scenario");
        let pred = predict_timed(&model, &scenario);
        t.push(vec![
            n.to_string(),
            mops(meas.cond_attempts_per_sec),
            mops(meas.goodput_ops_per_sec),
            fmt_f64(meas.failure_rate),
            fmt_f64(1.0 - pred.success_rate().expect("CAS-loop prediction")),
        ]);
    }
    Ok(t)
}

/// Fig 4 (E6): fairness (Jain index of per-thread successes) vs thread
/// count under each arbitration policy, plus the model's prediction for
/// the locality-biased policy.
pub fn fig4(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let order = PlacementOrder::new(Placement::Scattered, &topo);
    let mut t = Table::new(
        format!(
            "Fig 4 (E6): fairness vs threads (FAA, scattered) — {}",
            topo.name
        ),
        &["n", "fifo", "random", "nearest", "model_nearest"],
    );
    for n in machine.sweep_ns(ctx.quick) {
        if n < 2 {
            continue;
        }
        let mut row = vec![n.to_string()];
        for arb in ArbitrationPolicy::ALL {
            let mut cfg = ctx.run_cfg(machine, &topo);
            cfg.params.arbitration = arb;
            let meas = measure_pinned(
                &topo,
                &Workload::HighContention {
                    prim: Primitive::Faa,
                },
                order.threads_of(n),
                &cfg,
            )?;
            row.push(fmt_f64(meas.jain));
        }
        let pred = predict_jain(&topo, order.threads_of(n), ArbitrationKind::NearestFirst);
        row.push(fmt_f64(pred));
        t.push(row);
    }
    Ok(t)
}

/// Fig 5 (E7): energy per operation vs thread count (HC), simulator
/// RAPL-substitute vs model.
pub fn fig5(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let model = machine.model();
    let order = PlacementOrder::new(Placement::Packed, &topo);
    let mut t = Table::new(
        format!("Fig 5 (E7): energy per op vs threads (HC) — {}", topo.name),
        &["n", "faa_nj", "cas_nj", "model_faa_nj", "lc_faa_nj"],
    );
    for n in machine.sweep_ns(ctx.quick) {
        let w_faa = Workload::HighContention {
            prim: Primitive::Faa,
        };
        let faa = measure(&topo, &w_faa, n, &cfg)?;
        let cas = measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Cas,
            },
            n,
            &cfg,
        )?;
        let lc = measure(
            &topo,
            &Workload::LowContention {
                prim: Primitive::Faa,
                work: 0,
            },
            n,
            &cfg,
        )?;
        let scenario = w_faa
            .scenario(order.threads_of(n))
            .expect("high contention maps to a scenario");
        let pred = predict_timed(&model, &scenario);
        t.push(vec![
            n.to_string(),
            fmt_f64(faa.energy_per_op_nj.unwrap_or(0.0)),
            fmt_f64(cas.energy_per_op_nj.unwrap_or(0.0)),
            fmt_f64(pred.energy_per_op_nj),
            fmt_f64(lc.energy_per_op_nj.unwrap_or(0.0)),
        ]);
    }
    Ok(t)
}

/// Fig 6 (E8): low-contention throughput scaling vs thread count.
pub fn fig6(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let mut t = Table::new(
        format!(
            "Fig 6 (E8): LC throughput vs threads (Mops/s) — {}",
            topo.name
        ),
        &["n", "swap", "tas", "faa", "cas", "ideal_faa"],
    );
    let model = machine.model();
    for n in machine.sweep_ns(ctx.quick) {
        let mut row = vec![n.to_string()];
        for prim in Primitive::RMW {
            let meas = measure(&topo, &Workload::LowContention { prim, work: 0 }, n, &cfg)?;
            row.push(mops(meas.throughput_ops_per_sec));
        }
        row.push(mops(
            predict_timed(&model, &Scenario::low_contention(n, Primitive::Faa, 0.0))
                .throughput_ops_per_sec,
        ));
        t.push(row);
    }
    Ok(t)
}

/// Fig 7 (E9): model validation — fit the transfer costs on alternating
/// sweep points ([`crate::campaign`]), predict every point, and report
/// per-point error and MAPE for *both* throughput and mean latency.
pub fn fig7(ctx: ExpCtx, machine: Machine) -> ExpResult {
    use crate::campaign::{try_fit_and_validate, TrainSplit};
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let ns = machine.sweep_ns(ctx.quick);
    let split = if ns.iter().filter(|&&n| n >= 2).count() >= 4 {
        TrainSplit::Alternate
    } else {
        TrainSplit::All
    };
    let campaign = try_fit_and_validate(
        &topo,
        Primitive::Faa,
        &ns,
        &cfg,
        &machine.model_params(),
        split,
    )
    .map_err(|e| ExpError::Sim {
        context: format!("fit_and_validate HC FAA on {}", topo.name),
        source: Box::new(e),
    })?;
    let fitted = &campaign.fit.params.transfer;
    let mut t = Table::new(
        format!(
            "Fig 7 (E9): model validation, HC FAA — {} (fitted smt={} tile={} socket={} cross={})",
            topo.name,
            fmt_f64(fitted.smt),
            fmt_f64(fitted.tile),
            fmt_f64(fitted.socket),
            fmt_f64(fitted.cross),
        ),
        &[
            "n",
            "measured_mops",
            "predicted_mops",
            "err_pct",
            "measured_lat_cy",
            "predicted_lat_cy",
            "lat_err_pct",
        ],
    );
    for (x, l) in campaign.throughput_rows.iter().zip(&campaign.latency_rows) {
        t.push(vec![
            x.n.to_string(),
            mops(x.measured),
            mops(x.predicted),
            fmt_f64(x.ape_pct()),
            fmt_f64(l.measured),
            fmt_f64(l.predicted),
            fmt_f64(l.ape_pct()),
        ]);
    }
    t.push(vec![
        "MAPE".into(),
        String::new(),
        String::new(),
        fmt_f64(campaign.throughput_mape()),
        String::new(),
        String::new(),
        fmt_f64(campaign.latency_mape()),
    ]);
    Ok(t)
}

/// Fig 8 (E10): placement effect — HC throughput at a fixed thread
/// count under each placement policy, vs the model.
pub fn fig8(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let model = machine.model();
    let n = if ctx.quick {
        4
    } else {
        match machine {
            Machine::E5 => 24,
            Machine::Knl => 32,
        }
    };
    let mut t = Table::new(
        format!(
            "Fig 8 (E10): placement effect at n={n} (HC FAA) — {}",
            topo.name
        ),
        &[
            "placement",
            "throughput_mops",
            "model_mops",
            "cross_socket_share",
        ],
    );
    for placement in Placement::ALL {
        let hw = placement.assign(&topo, n);
        let w = Workload::HighContention {
            prim: Primitive::Faa,
        };
        let meas = measure_pinned(&topo, &w, &hw, &cfg)?;
        let scenario = w.scenario(&hw).expect("high contention maps to a scenario");
        let pred = predict_timed(&model, &scenario);
        t.push(vec![
            placement.label().into(),
            mops(meas.throughput_ops_per_sec),
            mops(pred.throughput_ops_per_sec),
            fmt_f64(pred.mixture[4]),
        ]);
    }
    Ok(t)
}

/// Fig 9 (E11): contention dilution — throughput and latency vs local
/// work between ops at a fixed thread count.
///
/// The paper-shaped observation: under saturation the injected local
/// work is *free* (system throughput stays at the 1/E\[t\] plateau while
/// per-op latency falls) until the knee at `w* ≈ (N−1)·E[t]`, after
/// which the system becomes demand-limited and throughput declines as
/// `N/(w + c_p + E[t])`.
pub fn fig9(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let model = machine.model();
    let n = if ctx.quick { 4 } else { 16 };
    let order = Placement::Packed.assign(&topo, n);
    let works: &[u64] = if ctx.quick {
        &[0, 100, 3200]
    } else {
        &[0, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800]
    };
    let mut t = Table::new(
        format!(
            "Fig 9 (E11): throughput vs local work between ops, n={n} (FAA) — {}",
            topo.name
        ),
        &[
            "work_cycles",
            "throughput_mops",
            "model_mops",
            "latency_cycles",
        ],
    );
    for &work in works {
        let w = Workload::Diluted {
            prim: Primitive::Faa,
            work,
        };
        let meas = measure(&topo, &w, n, &cfg)?;
        let scenario = w.scenario(&order).expect("dilution maps to a scenario");
        let pred = predict_timed(&model, &scenario);
        t.push(vec![
            work.to_string(),
            mops(meas.throughput_ops_per_sec),
            mops(pred.throughput_ops_per_sec),
            fmt_f64(meas.mean_latency_cycles),
        ]);
    }
    Ok(t)
}

/// Fig 10 (E12): application case study — lock implementations under
/// contention (critical-section handoffs per second).
pub fn fig10(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let mut cfg = ctx.run_cfg(machine, &topo);
    // Locks are latency-bound; give the sim a longer window so every
    // thread acquires several times even at large n.
    cfg.duration_cycles *= 2;
    let ns = if ctx.quick {
        vec![2, 4]
    } else {
        match machine {
            Machine::E5 => vec![2, 4, 8, 18, 36, 72],
            Machine::Knl => vec![2, 4, 16, 64, 144, 288],
        }
    };
    let mut t = Table::new(
        format!(
            "Fig 10 (E12): lock handoffs/s vs threads (cs=100cy, noncs=100cy) — {}",
            topo.name
        ),
        &[
            "n",
            "tas_mops",
            "ttas_mops",
            "ticket_mops",
            "mcs_mops",
            "model_tas",
            "model_mcs",
            "ticket_jain",
        ],
    );
    let model = machine.model();
    let order = PlacementOrder::new(Placement::Packed, &topo);
    for n in ns {
        let mut row = vec![n.to_string()];
        let mut ticket_jain = 1.0;
        for shape in LockShape::ALL {
            let meas = measure(
                &topo,
                &Workload::LockHandoff {
                    shape,
                    cs: 100,
                    noncs: 100,
                },
                n,
                &cfg,
            )?;
            row.push(mops(meas.lock_handoffs_per_sec(shape)));
            if shape == LockShape::Ticket {
                ticket_jain = meas.jain;
            }
        }
        // One lock scenario covers the whole shape ladder (the model's
        // handoff prediction is keyed by shape, not one call per lock).
        let scenario = Workload::LockHandoff {
            shape: LockShape::Tas,
            cs: 100,
            noncs: 100,
        }
        .scenario(order.threads_of(n))
        .expect("lock handoff maps to a scenario");
        let pred = predict_timed(&model, &scenario);
        let handoffs = pred.lock_handoffs().expect("lock prediction");
        row.push(mops(handoffs.get(LockShape::Tas)));
        row.push(mops(handoffs.get(LockShape::Mcs)));
        row.push(fmt_f64(ticket_jain));
        t.push(row);
    }
    Ok(t)
}

/// Fig 11 (E13): false sharing — per-thread words on one line vs padded
/// private lines. Logically private data, physically shared line: the
/// HC behaviour reappears.
pub fn fig11(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let mut t = Table::new(
        format!(
            "Fig 11 (E13): false sharing vs padded (FAA, Mops/s) — {}",
            topo.name
        ),
        &["n", "false_sharing", "padded", "slowdown"],
    );
    for n in machine.sweep_ns(ctx.quick) {
        if n > 8 && ctx.quick {
            continue;
        }
        let fs = measure(
            &topo,
            &Workload::FalseSharing {
                prim: Primitive::Faa,
            },
            n,
            &cfg,
        )?;
        let padded = measure(
            &topo,
            &Workload::LowContention {
                prim: Primitive::Faa,
                work: 0,
            },
            n,
            &cfg,
        )?;
        let slow = padded.throughput_ops_per_sec / fs.throughput_ops_per_sec.max(1.0);
        t.push(vec![
            n.to_string(),
            mops(fs.throughput_ops_per_sec),
            mops(padded.throughput_ops_per_sec),
            fmt_f64(slow),
        ]);
    }
    Ok(t)
}

/// Fig 12 (E14): read-mostly sharing — one writer, growing reader
/// count, with and without the MESIF Forward state. Cache-to-cache
/// forwarding (MESIF) spares the memory round trip after every
/// invalidation burst.
pub fn fig12(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let model = machine.model();
    let order = PlacementOrder::new(Placement::Packed, &topo);
    let mut t = Table::new(
        format!(
            "Fig 12 (E14): 1 writer + readers, MESIF vs MESI (total Mops/s) — {}",
            topo.name
        ),
        &["readers", "mesif", "mesi", "mesif_gain", "model"],
    );
    let reader_counts: Vec<usize> = if ctx.quick {
        vec![1, 3, 7]
    } else {
        vec![1, 3, 7, 15, 23, 31]
    };
    for readers in reader_counts {
        let n = readers + 1;
        if n > topo.num_threads() {
            continue;
        }
        let w = Workload::MixedReadWrite {
            writers: 1,
            prim: Primitive::Faa,
        };
        let run = |protocol: CoherenceKind| -> Result<f64, ExpError> {
            let mut cfg = ctx.run_cfg(machine, &topo);
            cfg.params.protocol = protocol;
            Ok(measure(&topo, &w, n, &cfg)?.throughput_ops_per_sec)
        };
        let with = run(CoherenceKind::Mesif)?;
        let without = run(CoherenceKind::Mesi)?;
        // The derived scenario carries the reader gap the reader loop
        // actually runs (`bounce_workloads::READER_GAP_CYCLES`).
        let scenario = w
            .scenario(order.threads_of(n))
            .expect("1-writer mixed read/write maps to a scenario");
        let pred = predict_timed(&model, &scenario);
        t.push(vec![
            readers.to_string(),
            mops(with),
            mops(without),
            fmt_f64(with / without.max(1.0)),
            mops(pred.throughput_ops_per_sec),
        ]);
    }
    Ok(t)
}

/// Fig 13 (E15): contention spreading — fixed thread count, growing
/// number of contended lines (the line-striped counter). Throughput
/// grows ~linearly with stripes until the demand cap.
pub fn fig13(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let model = machine.model();
    let n = if ctx.quick { 4 } else { 16 };
    let order = Placement::Packed.assign(&topo, n);
    let stripes: Vec<usize> = if ctx.quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let mut t = Table::new(
        format!(
            "Fig 13 (E15): contention spreading, n={n} (FAA, Mops/s) — {}",
            topo.name
        ),
        &["lines", "throughput_mops", "model_mops", "speedup_vs_1"],
    );
    let mut base = 0.0;
    for lines in stripes {
        let w = Workload::MultiLine {
            prim: Primitive::Faa,
            lines,
        };
        let meas = measure(&topo, &w, n, &cfg)?;
        let scenario = w
            .scenario(&order)
            .expect("line striping maps to a scenario");
        let pred = predict_timed(&model, &scenario);
        if lines == 1 {
            base = meas.throughput_ops_per_sec;
        }
        t.push(vec![
            lines.to_string(),
            mops(meas.throughput_ops_per_sec),
            mops(pred.throughput_ops_per_sec),
            fmt_f64(meas.throughput_ops_per_sec / base.max(1.0)),
        ]);
    }
    Ok(t)
}

/// Protocol ablation (E13): the same machine run under each coherence
/// protocol in the pluggable layer — MESIF (native on E5), MOESI
/// (AMD-style Owned state) and plain MESI.
///
/// Two regimes separate the three:
///
/// * **Pure RMW streams** (the `faa_hc` / `cas_hc` columns) are
///   protocol-blind: every transaction is an ownership transfer, and the
///   owner-to-owner forwarding path is identical in all three protocols
///   — the columns must agree exactly. This is the sanity row.
/// * **Read-heavy sharing** (`readheavy`: 1 FAA writer, the rest
///   readers) is where they diverge. MESIF's Forward copy answers racing
///   readers from the banked home path in parallel; MOESI's Owned copy
///   answers them cache-to-cache but one at a time (its cache port
///   serialises); MESI sends every clean-shared read to memory.
///   Expected ordering: MESIF ≥ MOESI > MESI.
pub fn protocol_ablation(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let n = if ctx.quick { 8 } else { 16 };
    let mut t = Table::new(
        format!("Protocol ablation (E13) at n={n} — {}", topo.name),
        &[
            "protocol",
            "faa_hc_mops",
            "cas_hc_mops",
            "faa_lat_cycles",
            "readheavy_mops",
        ],
    );
    for kind in CoherenceKind::ALL {
        let mut cfg = ctx.run_cfg(machine, &topo);
        cfg.params.protocol = kind;
        let faa = measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            n,
            &cfg,
        )?;
        let cas = measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Cas,
            },
            n,
            &cfg,
        )?;
        // The read-heavy separator runs with a direct-mapped L1 so the
        // scanners' filler line evicts their shared copy every
        // iteration (see `Workload::ReadScan`); the protocols then
        // differ in which data path answers the resulting read misses.
        let mut scan_cfg = cfg.clone();
        scan_cfg.params.l1_ways = 1;
        let readheavy = measure(
            &topo,
            &Workload::ReadScan {
                writers: 1,
                writer_work: 2000,
            },
            n,
            &scan_cfg,
        )?;
        t.push(vec![
            kind.label().to_string(),
            mops(faa.throughput_ops_per_sec),
            mops(cas.throughput_ops_per_sec),
            fmt_f64(faa.mean_latency_cycles),
            mops(readheavy.throughput_ops_per_sec),
        ]);
    }
    Ok(t)
}

/// Ablation table (A1–A3): the design choices DESIGN.md calls out —
/// CAS backoff, home-slice placement, arbitration policy — each probed
/// at one contention level.
pub fn ablations(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let n = if ctx.quick { 4 } else { 16 };
    let mut t = Table::new(
        format!("Ablations (A1-A5) at n={n} — {}", topo.name),
        &["ablation", "variant", "goodput_mops", "fail_rate", "jain"],
    );
    // A1: backoff ladder on the CAS retry loop.
    for (label, w) in [
        (
            "none",
            Workload::CasRetryLoop {
                window: 30,
                work: 0,
            },
        ),
        (
            "ladder-64",
            Workload::CasRetryLoopBackoff {
                window: 30,
                backoff: [64, 256, 1024],
            },
        ),
        (
            "ladder-512",
            Workload::CasRetryLoopBackoff {
                window: 30,
                backoff: [512, 2048, 8192],
            },
        ),
    ] {
        let cfg = ctx.run_cfg(machine, &topo);
        let m = measure(&topo, &w, n, &cfg)?;
        t.push(vec![
            "A1-backoff".into(),
            label.into(),
            mops(m.goodput_ops_per_sec),
            fmt_f64(m.failure_rate),
            fmt_f64(m.jain),
        ]);
    }
    // A2: home-slice placement for HC FAA.
    for (label, policy) in [
        ("fixed-0", bounce_sim::HomePolicy::Fixed(0)),
        (
            "fixed-far",
            bounce_sim::HomePolicy::Fixed(topo.num_tiles() - 1),
        ),
        ("hash", bounce_sim::HomePolicy::Hash),
    ] {
        let mut cfg = ctx.run_cfg(machine, &topo);
        cfg.params.home_policy = policy;
        let m = measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            n,
            &cfg,
        )?;
        t.push(vec![
            "A2-home".into(),
            label.into(),
            mops(m.goodput_ops_per_sec),
            fmt_f64(m.failure_rate),
            fmt_f64(m.jain),
        ]);
    }
    // A3: arbitration policy's throughput/fairness trade (scattered
    // placement so locality matters).
    for arb in ArbitrationPolicy::ALL {
        let mut cfg = ctx.run_cfg(machine, &topo);
        cfg.params.arbitration = arb;
        cfg.placement = Placement::Scattered;
        let m = measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            n,
            &cfg,
        )?;
        t.push(vec![
            "A3-arbitration".into(),
            arb.label().into(),
            mops(m.goodput_ops_per_sec),
            fmt_f64(m.failure_rate),
            fmt_f64(m.jain),
        ]);
    }
    // A4: home-agent bandwidth under line striping — with a finite
    // home port, striping only helps when the stripes' homes are
    // *distributed* (hashed), not when every stripe shares one slice.
    for (label, policy, occupancy) in [
        ("fixed0-infbw", bounce_sim::HomePolicy::Fixed(0), 0u32),
        ("fixed0-port40", bounce_sim::HomePolicy::Fixed(0), 40),
        ("hash-port40", bounce_sim::HomePolicy::Hash, 40),
    ] {
        let mut cfg = ctx.run_cfg(machine, &topo);
        cfg.params.home_policy = policy;
        cfg.params.home_port_occupancy = occupancy;
        let m = measure(
            &topo,
            &Workload::MultiLine {
                prim: Primitive::Faa,
                lines: (n / 2).max(2),
            },
            n,
            &cfg,
        )?;
        t.push(vec![
            "A4-home-bandwidth".into(),
            label.into(),
            mops(m.goodput_ops_per_sec),
            fmt_f64(m.failure_rate),
            fmt_f64(m.jain),
        ]);
    }
    // A5: NoC link bandwidth — striped HC traffic with hashed homes,
    // with and without per-link occupancy. Finite links couple flows
    // whose routes overlap.
    for (label, occupancy) in [("inf-links", 0u32), ("link-occ8", 8), ("link-occ24", 24)] {
        let mut cfg = ctx.run_cfg(machine, &topo);
        cfg.params.home_policy = bounce_sim::HomePolicy::Hash;
        cfg.params.link_occupancy_cycles = occupancy;
        let m = measure(
            &topo,
            &Workload::MultiLine {
                prim: Primitive::Faa,
                lines: (n / 2).max(2),
            },
            n,
            &cfg,
        )?;
        t.push(vec![
            "A5-link-bandwidth".into(),
            label.into(),
            mops(m.goodput_ops_per_sec),
            fmt_f64(m.failure_rate),
            fmt_f64(m.jain),
        ]);
    }
    Ok(t)
}

/// Latency-distribution table (D1): the full log2 histogram behind
/// Fig 2 for a few representative thread counts, under *random*
/// arbitration (FIFO's strict rotation gives every op the same queue
/// depth and collapses the distribution to one bucket — the spread
/// comes from winner variance and the domain mixture).
pub fn latency_hist(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let mut cfg = ctx.run_cfg(machine, &topo);
    cfg.params.arbitration = ArbitrationPolicy::Random;
    let ns: Vec<usize> = if ctx.quick {
        vec![2, 4]
    } else {
        vec![2, 8, 36]
    };
    let mut t = Table::new(
        format!(
            "Latency distribution (D1): HC FAA log2 buckets, random arbitration — {}",
            topo.name
        ),
        &[
            "n",
            "bucket_lo_cycles",
            "bucket_hi_cycles",
            "count",
            "share",
        ],
    );
    for n in ns {
        if n > topo.num_threads() {
            continue;
        }
        // Re-run through the engine directly to reach the histogram.
        let sim_cfg = bounce_sim::SimConfig::new(cfg.params.clone(), cfg.duration_cycles);
        let mut eng = bounce_sim::Engine::new(&topo, sim_cfg);
        let w = Workload::HighContention {
            prim: Primitive::Faa,
        };
        for (hw, p) in Placement::Scattered
            .assign(&topo, n)
            .into_iter()
            .zip(w.sim_programs(n))
        {
            eng.add_thread(hw, p);
        }
        let report = eng.run();
        let merged = report.merged_latency();
        let total = merged.count.max(1) as f64;
        for (i, &count) in merged.hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            t.push(vec![
                n.to_string(),
                (1u64 << i).to_string(),
                ((1u64 << i) * 2 - 1).to_string(),
                count.to_string(),
                fmt_f64(count as f64 / total),
            ]);
        }
    }
    Ok(t)
}

/// Fig 14 (E16): Zipf-skewed contention — throughput vs skew θ over a
/// fixed line population. θ = 0 is the striped regime; growing θ
/// funnels traffic into one hot line and collapses toward single-line
/// HC. The model bound treats the hottest line as the bottleneck:
/// `X ≤ min( (f/E[t]) / p₀,  N·f/c_p )` with `p₀` the head line's
/// popularity.
pub fn fig14(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let cfg = ctx.run_cfg(machine, &topo);
    let model = machine.model();
    let n = if ctx.quick { 4 } else { 16 };
    let lines = 8;
    let order = Placement::Packed.assign(&topo, n);
    let thetas: &[f64] = if ctx.quick {
        &[0.0, 1.2]
    } else {
        &[0.0, 0.4, 0.8, 1.2, 1.6, 2.4]
    };
    let mut t = Table::new(
        format!(
            "Fig 14 (E16): Zipf contention, n={n}, {lines} lines (FAA, Mops/s) — {}",
            topo.name
        ),
        &[
            "theta",
            "throughput_mops",
            "hot_line_share",
            "model_bound_mops",
        ],
    );
    for &theta in thetas {
        let meas = measure(
            &topo,
            &Workload::Zipf {
                prim: Primitive::Faa,
                lines,
                theta,
                seed: 7,
            },
            n,
            &cfg,
        )?;
        let p0 = bounce_workloads::Zipf::new(lines, theta).pmf(0);
        let hc = predict_timed(&model, &Scenario::high_contention(&order, Primitive::Faa));
        let lc = predict_timed(&model, &Scenario::low_contention(n, Primitive::Faa, 0.0));
        let bound = (hc.throughput_ops_per_sec / p0).min(lc.throughput_ops_per_sec);
        t.push(vec![
            format!("{theta:.1}"),
            mops(meas.throughput_ops_per_sec),
            fmt_f64(p0),
            mops(bound),
        ]);
    }
    Ok(t)
}

/// Sensitivity table (S1): elasticities of the HC predictions with
/// respect to each model parameter, at a within-socket and a
/// cross-socket configuration. Answers "how much does a fitting error
/// in θ matter?".
pub fn sensitivity(ctx: ExpCtx, machine: Machine) -> ExpResult {
    use bounce_core::sensitivity::hc_sensitivities;
    let topo = machine.topo();
    let model = machine.model();
    let configs: Vec<(&str, usize)> = if ctx.quick {
        vec![("small", 4)]
    } else {
        match machine {
            Machine::E5 => vec![("within-socket", 16), ("cross-socket", 36)],
            Machine::Knl => vec![("few-tiles", 16), ("full-mesh", 144)],
        }
    };
    let mut t = Table::new(
        format!("Sensitivity (S1): HC elasticities, FAA — {}", topo.name),
        &["config", "param", "d_throughput", "d_latency", "d_energy"],
    );
    for (label, n) in configs {
        let threads = Placement::Packed.assign(&topo, n);
        for s in hc_sensitivities(&model, &threads, Primitive::Faa, 0.05) {
            t.push(vec![
                label.into(),
                s.param.label().into(),
                fmt_f64(s.throughput),
                fmt_f64(s.latency),
                fmt_f64(s.energy),
            ]);
        }
    }
    Ok(t)
}

/// E14: preemption fault injection — sweep the mean fraction of time
/// threads spend preempted (descheduled mid-critical-path) and watch
/// fairness degrade per primitive. Preemption windows are deterministic
/// per (seed, thread) and graded across threads with full
/// `preempt_spread` — OS noise concentrates on some hardware threads
/// (housekeeping cores, IRQ affinity), so thread 0 runs clean while the
/// last thread sees twice the mean rate; see [`bounce_sim::FaultConfig`].
///
/// FAA is wait-free: a preempted thread loses exactly its own slots, so
/// per-thread throughput tracks uptime and Jain falls linearly with the
/// noise gradient. The CAS retry loop is only lock-free: a preempted
/// thread wakes to a stale compare value and re-enters arbitration from
/// the back, so the noisy threads lose *more* than their dark fraction —
/// its Jain collapses faster than FAA's. Aggregate failure rate *falls*
/// with preemption (dark threads thin the contention), which is exactly
/// the asymmetry the fairness index exposes. Arbitration is `Random`
/// here: deterministic FIFO gives the CAS loop a degenerately unfair
/// baseline (fixed winner pattern) that would mask the fault effect.
pub fn fault_injection(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let n = if ctx.quick { 4 } else { 16 };
    let preempt_len: u64 = 5_000;
    let pcts: &[u64] = if ctx.quick {
        &[0, 10, 40]
    } else {
        &[0, 5, 10, 20, 40]
    };
    let mut t = Table::new(
        format!(
            "E14: preemption fault injection, n={n} (window {preempt_len} cycles) — {}",
            topo.name
        ),
        &[
            "preempt_pct",
            "faa_mops",
            "faa_jain",
            "casloop_goodput_mops",
            "casloop_fail_rate",
            "casloop_jain",
        ],
    );
    for &pct in pcts {
        // interval is the full period; the dark fraction is
        // len / (len + gap) with mean gap = interval, so solve
        // interval = len * (100 - pct) / pct for an exact mean dark
        // fraction of pct/100 (pct = 0 disables preemption entirely).
        let faults = match (preempt_len * (100 - pct)).checked_div(pct) {
            None => FaultConfig::default(),
            Some(interval) => FaultConfig {
                preempt_interval_cycles: interval,
                preempt_len_cycles: preempt_len,
                preempt_spread: 1.0,
                freq_jitter: 0.0,
            },
        };
        let mut cfg = ctx.run_cfg(machine, &topo).with_faults(faults);
        cfg.params.arbitration = ArbitrationPolicy::Random;
        // Preemption transients are the point of this experiment — the
        // run is deliberately non-steady-state, so adaptive run-length
        // convergence would cut it short mid-transient. Always run the
        // full fixed budget here.
        cfg.params.run_length = bounce_sim::RunLength::default();
        let faa = measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            n,
            &cfg,
        )?;
        let cas = measure(
            &topo,
            &Workload::CasRetryLoop {
                window: 30,
                work: 0,
            },
            n,
            &cfg,
        )?;
        t.push(vec![
            pct.to_string(),
            mops(faa.throughput_ops_per_sec),
            fmt_f64(faa.jain),
            mops(cas.goodput_ops_per_sec),
            fmt_f64(cas.failure_rate),
            fmt_f64(cas.jain),
        ]);
    }
    Ok(t)
}

/// One degraded-fabric severity level: the NACK rate and the bank
/// occupancy limit it implies (severity 0 = fault-free).
fn fabric_severity(nack_per_mille: u32, max_pending: u32) -> FabricFaultConfig {
    if nack_per_mille == 0 && max_pending == 0 {
        return FabricFaultConfig::default();
    }
    FabricFaultConfig {
        nack_per_mille,
        max_pending_per_bank: max_pending,
        // Congestion severity rides the NACK axis: windows lengthen
        // with the refusal rate (len must stay below the interval).
        congestion_interval_cycles: 20_000,
        congestion_len_cycles: (nack_per_mille as u64 * 10).clamp(500, 8_000),
        congestion_multiplier: 3,
        jitter_cycles: 0,
    }
}

/// A measurement that tolerates a retry storm: the storm becomes `None`
/// (a zeroed row cell) instead of failing the whole experiment — that
/// collapse *is* the result e15 reports.
fn measure_or_storm(
    topo: &MachineTopology,
    w: &Workload,
    n: usize,
    cfg: &SimRunConfig,
) -> Result<Option<Measurement>, ExpError> {
    match try_sim_measure(topo, w, n, cfg) {
        Ok(m) => Ok(Some(m)),
        Err(SimError::RetryStorm { .. }) => Ok(None),
        Err(e) => Err(ExpError::Sim {
            context: format!("{} n={} on {}", w.label(), n, topo.name),
            source: Box::new(e),
        }),
    }
}

/// E15: degraded-fabric fault injection — directory NACKs plus link
/// congestion, swept by severity. Compares hardware-arbitrated FAA, the
/// bare CAS retry loop under an eager (zero-backoff) NACK retry policy,
/// the same loop under the exponential backoff ladder, and the ticket
/// lock. Expected shape: FAA and the ticket lock degrade smoothly with
/// severity; the eager CAS loop hits a retry-storm knee (goodput
/// collapses to 0 when a transaction exhausts its budget against a
/// saturated bank) that the backoff ladder pushes to higher severities.
pub fn degraded_fabric(ctx: ExpCtx, machine: Machine) -> ExpResult {
    let topo = machine.topo();
    let n = if ctx.quick { 4 } else { 16 };
    // (nack_per_mille, max_pending_per_bank): refusal pressure rises
    // while the modeled bank capacity shrinks.
    let severities: &[(u32, u32)] = if ctx.quick {
        &[(0, 0), (100, 4), (400, 2)]
    } else {
        &[(0, 0), (50, 8), (100, 6), (200, 4), (400, 2)]
    };
    let mut t = Table::new(
        format!(
            "E15: degraded fabric (NACK + congestion), n={n} — {}",
            topo.name
        ),
        &[
            "nack_per_mille",
            "faa_mops",
            "faa_jain",
            "faa_p50",
            "faa_p99",
            "cas_eager_goodput_mops",
            "cas_eager_p99",
            "cas_backoff_goodput_mops",
            "cas_backoff_p99",
            "ticket_handoff_mops",
            "ticket_p99",
        ],
    );
    for &(nack, pending) in severities {
        let fabric = fabric_severity(nack, pending);
        let base = ctx.run_cfg(machine, &topo).with_fabric_faults(fabric);
        // Fault transients are the point: adaptive run-length
        // convergence would cut the run mid-transient, so e15 always
        // runs the full fixed budget (same reasoning as e14).
        let mk = |retry: RetryPolicy| {
            let mut cfg = base.clone().with_retry_policy(retry);
            cfg.params.run_length = bounce_sim::RunLength::default();
            cfg
        };
        let backoff_cfg = mk(RetryPolicy::backoff());
        let eager_cfg = mk(RetryPolicy::eager());
        let faa = measure_or_storm(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            n,
            &backoff_cfg,
        )?;
        let cas = Workload::CasRetryLoop {
            window: 30,
            work: 0,
        };
        let cas_eager = measure_or_storm(&topo, &cas, n, &eager_cfg)?;
        let cas_backoff = measure_or_storm(&topo, &cas, n, &backoff_cfg)?;
        let ticket = measure_or_storm(
            &topo,
            &Workload::LockHandoff {
                shape: LockShape::Ticket,
                cs: 100,
                noncs: 100,
            },
            n,
            &backoff_cfg,
        )?;
        let cell = |m: &Option<Measurement>, f: &dyn Fn(&Measurement) -> f64| {
            fmt_f64(m.as_ref().map(f).unwrap_or(0.0))
        };
        t.push(vec![
            nack.to_string(),
            cell(&faa, &|m| m.throughput_ops_per_sec / 1e6),
            cell(&faa, &|m| m.jain),
            cell(&faa, &|m| m.p50_latency_cycles),
            cell(&faa, &|m| m.p99_latency_cycles),
            cell(&cas_eager, &|m| m.goodput_ops_per_sec / 1e6),
            cell(&cas_eager, &|m| m.p99_latency_cycles),
            cell(&cas_backoff, &|m| m.goodput_ops_per_sec / 1e6),
            cell(&cas_backoff, &|m| m.p99_latency_cycles),
            cell(&ticket, &|m| {
                m.lock_handoffs_per_sec(LockShape::Ticket) / 1e6
            }),
            cell(&ticket, &|m| m.p99_latency_cycles),
        ]);
    }
    Ok(t)
}

/// A deferred experiment: call it to run.
pub type ExpThunk = Box<dyn Fn() -> ExpResult + Send + Sync>;

/// Every experiment as an (id, thunk) pair, in presentation order, with
/// stable ids. The `repro` binary uses this directly so `--filter` and
/// `--resume` can skip experiments without running them.
pub fn experiment_specs(ctx: ExpCtx) -> Vec<(String, ExpThunk)> {
    let mut specs: Vec<(String, ExpThunk)> = vec![
        ("table1".to_string(), Box::new(|| Ok(table1()))),
        ("table2".to_string(), Box::new(move || table2(ctx))),
    ];
    for m in Machine::ALL {
        let figs: [(&str, ExpThunk); 20] = [
            ("fig1", Box::new(move || fig1(ctx, m))),
            ("fig2", Box::new(move || fig2(ctx, m))),
            ("fig3", Box::new(move || fig3(ctx, m))),
            ("fig4", Box::new(move || fig4(ctx, m))),
            ("fig5", Box::new(move || fig5(ctx, m))),
            ("fig6", Box::new(move || fig6(ctx, m))),
            ("fig7", Box::new(move || fig7(ctx, m))),
            ("fig8", Box::new(move || fig8(ctx, m))),
            ("fig9", Box::new(move || fig9(ctx, m))),
            ("fig10", Box::new(move || fig10(ctx, m))),
            ("fig11", Box::new(move || fig11(ctx, m))),
            ("fig12", Box::new(move || fig12(ctx, m))),
            ("fig13", Box::new(move || fig13(ctx, m))),
            ("fig14", Box::new(move || fig14(ctx, m))),
            ("e13", Box::new(move || protocol_ablation(ctx, m))),
            ("e14", Box::new(move || fault_injection(ctx, m))),
            ("e15", Box::new(move || degraded_fabric(ctx, m))),
            ("ablations", Box::new(move || ablations(ctx, m))),
            ("sensitivity", Box::new(move || sensitivity(ctx, m))),
            ("latency-hist", Box::new(move || latency_hist(ctx, m))),
        ];
        for (name, thunk) in figs {
            specs.push((format!("{name}-{}", m.label()), thunk));
        }
    }
    specs
}

/// Machine-readable thread sweep: the high-contention workload for
/// `prim` across the machine's standard thread counts, serialized via
/// [`crate::sweeps::measurements_json`] — the backend of `repro sweep`.
/// Honors every context override, so `--fabric-faults`/`--retry-policy`
/// sweeps export their p50/p99 latency percentiles without any TSV
/// round-trip.
pub fn sweep_json(ctx: ExpCtx, machine: Machine, prim: Primitive) -> Result<String, ExpError> {
    let topo = machine.topo();
    let ns = machine.sweep_ns(ctx.quick);
    let cfg = ctx.run_cfg(machine, &topo);
    let w = Workload::HighContention { prim };
    let ms = crate::sweeps::try_sweep_threads(&topo, &w, &ns, &cfg).map_err(|e| ExpError::Sim {
        context: format!("sweep {} on {}", w.label(), topo.name),
        source: Box::new(e),
    })?;
    Ok(crate::sweeps::measurements_json(
        &format!("hc-{}-{}", prim.label(), machine.label()),
        &ms,
    ))
}

/// Every distinct workload parameterization the experiment registry
/// draws from, plus the standard battery — the input set for offline
/// workload-IR linting (`repro lint` and the `bounce-verify` registry
/// property test). Kept next to [`experiment_specs`] so a new
/// experiment's workloads get added here in the same change; the
/// `registry_workloads_cover_experiment_specs` test cross-checks the
/// experiment sources against this list.
pub fn registered_workloads() -> Vec<Workload> {
    let mut v = Workload::standard_battery();
    // table2 / fig6: per-primitive low contention.
    v.extend(
        Primitive::ALL
            .iter()
            .map(|&prim| Workload::LowContention { prim, work: 0 }),
    );
    // fig9 (E11): dilution sweep — work is a latency knob, not a shape
    // knob, but lint the sweep endpoints anyway.
    for work in [0, 12_800] {
        v.push(Workload::Diluted {
            prim: Primitive::Faa,
            work,
        });
    }
    // fig12: false sharing and its padded antidote.
    v.push(Workload::FalseSharing {
        prim: Primitive::Faa,
    });
    // fig11 / E13: read-mostly sharing.
    v.push(Workload::MixedReadWrite {
        writers: 1,
        prim: Primitive::Faa,
    });
    v.push(Workload::ReadScan {
        writers: 1,
        writer_work: 2000,
    });
    // fig13: line striping.
    for lines in [1, 2, 8] {
        v.push(Workload::MultiLine {
            prim: Primitive::Faa,
            lines,
        });
    }
    // Ablation A1: backoff ladders.
    for backoff in [[64, 256, 1024], [512, 2048, 8192]] {
        v.push(Workload::CasRetryLoopBackoff {
            window: 30,
            backoff,
        });
    }
    // fig14 (E16): Zipf skew sweep endpoints.
    for theta in [0.0, 2.4] {
        v.push(Workload::Zipf {
            prim: Primitive::Faa,
            lines: 8,
            theta,
            seed: 7,
        });
    }
    // Dedup by label (battery and per-experiment entries overlap).
    let mut seen = std::collections::BTreeSet::new();
    v.retain(|w| seen.insert(w.label()));
    v
}

/// Run one experiment thunk with panic isolation: a panic anywhere in
/// the experiment becomes an [`ExpError::Panic`] naming the experiment,
/// and sibling experiments are unaffected.
pub fn run_guarded(id: &str, thunk: &ExpThunk) -> ExpResult {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    match catch_unwind(AssertUnwindSafe(thunk)) {
        Ok(r) => r,
        Err(p) => Err(ExpError::Panic {
            context: format!("experiment {id}"),
            payload: crate::parallel::payload_string(p),
        }),
    }
}

/// Every experiment, in presentation order, with stable ids. A failing
/// experiment — watchdog trip or panic — yields its `Err` in place
/// while every other experiment still runs to completion.
///
/// Experiments run on the parallel executor (see [`crate::parallel`]):
/// each (id, result) pair is produced by an independent task, and
/// results are collected in registry order, so the output — and every
/// table in it — is identical to a serial run.
pub fn all_experiments(ctx: ExpCtx) -> Vec<(String, ExpResult)> {
    all_experiments_timed(ctx)
        .into_iter()
        .map(|(id, t, _)| (id, t))
        .collect()
}

/// Like [`all_experiments`], with each experiment's own wall-clock
/// elapsed time (as seen by the task, so times of concurrently-running
/// experiments overlap).
pub fn all_experiments_timed(ctx: ExpCtx) -> Vec<(String, ExpResult, std::time::Duration)> {
    let specs = experiment_specs(ctx);
    crate::parallel::par_run(specs.len(), |i| {
        let (id, thunk) = &specs[i];
        let t0 = std::time::Instant::now();
        let result = run_guarded(id, thunk);
        (id.clone(), result, t0.elapsed())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_workloads_cover_experiment_specs() {
        // Every Workload variant the experiment functions construct
        // must appear in the lint registry — cross-checked against
        // this file's own source so a new experiment using a new
        // variant fails here until the registry learns it.
        let registered = registered_workloads();
        let src = include_str!("experiments.rs");
        let variant_of = |w: &Workload| -> &'static str {
            match w {
                Workload::HighContention { .. } => "HighContention",
                Workload::LowContention { .. } => "LowContention",
                Workload::Diluted { .. } => "Diluted",
                Workload::CasRetryLoop { .. } => "CasRetryLoop",
                Workload::MixedReadWrite { .. } => "MixedReadWrite",
                Workload::ReadScan { .. } => "ReadScan",
                Workload::LockHandoff { .. } => "LockHandoff",
                Workload::FalseSharing { .. } => "FalseSharing",
                Workload::CasRetryLoopBackoff { .. } => "CasRetryLoopBackoff",
                Workload::MultiLine { .. } => "MultiLine",
                Workload::Zipf { .. } => "Zipf",
            }
        };
        let covered: std::collections::BTreeSet<&str> = registered.iter().map(variant_of).collect();
        for variant in [
            "HighContention",
            "LowContention",
            "Diluted",
            "CasRetryLoop",
            "MixedReadWrite",
            "ReadScan",
            "LockHandoff",
            "FalseSharing",
            "CasRetryLoopBackoff",
            "MultiLine",
            "Zipf",
        ] {
            if src.contains(&format!("Workload::{variant}")) {
                assert!(
                    covered.contains(variant),
                    "experiments use Workload::{variant} but registered_workloads() \
                     lists no parameterization of it"
                );
            }
        }
        // The registry is label-unique (no accidental duplicates).
        let labels: std::collections::BTreeSet<String> =
            registered.iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), registered.len());
    }

    #[test]
    fn table1_lists_both_machines() {
        let t = table1();
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][0].contains("E5"));
        assert!(t.rows[1][0].contains("Phi"));
    }

    #[test]
    fn table2_rmw_slower_than_load() {
        let t = table2(ExpCtx::quick()).unwrap();
        // 2 machines x 6 primitives.
        assert_eq!(t.rows.len(), 12);
        let lat = t.column("latency_cycles").unwrap();
        let prim = t.column("primitive").unwrap();
        let find = |machine_rows: &[&Vec<String>], p: &str| -> f64 {
            machine_rows.iter().find(|r| r[prim] == p).unwrap()[lat]
                .parse()
                .unwrap()
        };
        let e5_rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "e5").collect();
        assert!(find(&e5_rows, "faa") > find(&e5_rows, "load"));
        assert!(find(&e5_rows, "cas") >= find(&e5_rows, "faa"));
    }

    #[test]
    fn fig1_has_expected_shape() {
        let t = fig1(ExpCtx::quick(), Machine::E5).unwrap();
        assert_eq!(t.headers.len(), 7);
        assert_eq!(t.rows.len(), 4); // quick sweep 1,2,4,8
                                     // Single-thread FAA beats 8-thread FAA (the contention cliff).
        let faa = t.column_f64("faa").unwrap();
        assert!(faa[0] > faa[3], "n=1 {} should beat n=8 {}", faa[0], faa[3]);
    }

    #[test]
    fn fig3_failure_grows_with_n() {
        let t = fig3(ExpCtx::quick(), Machine::E5).unwrap();
        let fail = t.column_f64("fail_rate").unwrap();
        assert!(fail[0] <= fail[fail.len() - 1] + 0.05);
        // Model column exists and is a probability.
        let mf = t.column_f64("model_fail_rate").unwrap();
        assert!(mf.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn fig7_reports_mape() {
        let t = fig7(ExpCtx::quick(), Machine::E5).unwrap();
        let last = t.rows.last().unwrap();
        assert_eq!(last[0], "MAPE");
        let m: f64 = last[3].parse().unwrap();
        assert!(m < 50.0, "MAPE {m} suspiciously high even for quick mode");
    }

    #[test]
    fn fig9_free_work_then_decline() {
        let t = fig9(ExpCtx::quick(), Machine::E5).unwrap();
        let x = t.column_f64("throughput_mops").unwrap();
        // Small work is free under saturation...
        assert!(
            (x[1] / x[0] - 1.0).abs() < 0.25,
            "work below the knee is ~free: {x:?}"
        );
        // ...huge work is demand-limiting.
        assert!(
            *x.last().unwrap() < 0.5 * x[0],
            "work far past the knee must cost throughput: {x:?}"
        );
        // Latency falls once contention is diluted.
        let lat = t.column_f64("latency_cycles").unwrap();
        assert!(lat.last().unwrap() < lat.first().unwrap(), "{lat:?}");
    }

    #[test]
    fn all_experiments_quick_runs() {
        let all = all_experiments(ExpCtx::quick());
        assert_eq!(all.len(), 2 + 2 * 20);
        for (id, r) in &all {
            let t = r.as_ref().unwrap_or_else(|e| panic!("{id} failed: {e}"));
            assert!(!t.rows.is_empty(), "{id} produced no rows");
        }
    }

    #[test]
    fn e14_is_deterministic() {
        let a = fault_injection(ExpCtx::quick(), Machine::E5).unwrap();
        let b = fault_injection(ExpCtx::quick(), Machine::E5).unwrap();
        assert_eq!(a.rows, b.rows, "same seed must give identical tables");
    }

    #[test]
    fn e14_fairness_degrades_with_preemption() {
        let t = fault_injection(ExpCtx::quick(), Machine::E5).unwrap();
        let cas_jain = t.column_f64("casloop_jain").unwrap();
        let faa_jain = t.column_f64("faa_jain").unwrap();
        let fail = t.column_f64("casloop_fail_rate").unwrap();
        // Fairness must fall monotonically (small tolerance per step for
        // sampling noise) as the preemption rate grows, for both
        // primitives.
        for jain in [&cas_jain, &faa_jain] {
            for w in jain.windows(2) {
                assert!(
                    w[1] <= w[0] + 0.02,
                    "Jain must not improve under preemption: {jain:?}"
                );
            }
        }
        assert!(
            *cas_jain.last().unwrap() < cas_jain[0] - 0.1,
            "40% preemption must visibly skew the CAS loop: {cas_jain:?}"
        );
        // The CAS loop's stale-wake penalty makes it collapse harder
        // than wait-free FAA.
        assert!(
            cas_jain.last().unwrap() < faa_jain.last().unwrap(),
            "CAS fairness {cas_jain:?} must fall below FAA's {faa_jain:?}"
        );
        // Dark threads thin the contention, so the aggregate CAS
        // failure rate falls even as fairness collapses.
        assert!(
            *fail.last().unwrap() <= fail[0],
            "preemption thins contention; failure rate must not rise: {fail:?}"
        );
    }

    #[test]
    fn e15_is_deterministic() {
        let a = degraded_fabric(ExpCtx::quick(), Machine::E5).unwrap();
        let b = degraded_fabric(ExpCtx::quick(), Machine::E5).unwrap();
        assert_eq!(a.rows, b.rows, "same seed must give identical tables");
    }

    #[test]
    fn e15_fabric_degradation_has_paper_shape() {
        let t = degraded_fabric(ExpCtx::quick(), Machine::E5).unwrap();
        assert_eq!(t.rows.len(), 3, "quick severity axis");
        let faa = t.column_f64("faa_mops").unwrap();
        let eager = t.column_f64("cas_eager_goodput_mops").unwrap();
        let backoff = t.column_f64("cas_backoff_goodput_mops").unwrap();
        let ticket = t.column_f64("ticket_handoff_mops").unwrap();
        // Severity 0 is healthy for every workload.
        assert!(faa[0] > 0.0 && eager[0] > 0.0 && backoff[0] > 0.0 && ticket[0] > 0.0);
        // FAA and the ticket lock degrade but survive the whole axis.
        let last = faa.len() - 1;
        assert!(
            faa[last] > 0.0,
            "FAA must survive the worst fabric: {faa:?}"
        );
        assert!(
            faa[last] < faa[0],
            "NACK/congestion pressure must cost FAA throughput: {faa:?}"
        );
        assert!(
            ticket[last] > 0.0,
            "ticket lock must survive the worst fabric: {ticket:?}"
        );
        // The retry dynamics contrast: under the harshest fabric the
        // backoff ladder must do at least as well as eager retry (eager
        // may have stormed to 0 — that collapse is the knee).
        assert!(
            backoff[last] >= eager[last],
            "backoff must not lose to eager retry under pressure: \
             backoff {backoff:?} vs eager {eager:?}"
        );
        // Relative degradation: bare CAS under eager retry loses more of
        // its healthy-fabric goodput than hardware-arbitrated FAA does.
        let ratio = |xs: &[f64]| xs[last] / xs[0].max(1e-12);
        assert!(
            ratio(&eager) <= ratio(&faa) + 1e-9,
            "eager CAS must degrade at least as hard as FAA: \
             eager {eager:?} vs faa {faa:?}"
        );
    }

    #[test]
    fn run_guarded_converts_panics() {
        let thunk: ExpThunk = Box::new(|| panic!("synthetic failure"));
        let err = run_guarded("e99", &thunk).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("e99"), "{msg}");
        assert!(msg.contains("synthetic failure"), "{msg}");
    }

    #[test]
    fn fig11_false_sharing_much_slower_than_padded() {
        let t = fig11(ExpCtx::quick(), Machine::E5).unwrap();
        let slow = t.column_f64("slowdown").unwrap();
        // At n >= 4 padding must win by a wide margin.
        assert!(
            *slow.last().unwrap() > 3.0,
            "false sharing should be >3x slower: {slow:?}"
        );
    }

    #[test]
    fn e13_protocol_ordering() {
        let t = protocol_ablation(ExpCtx::quick(), Machine::E5).unwrap();
        let proto = t.column("protocol").unwrap();
        let row = |p: &str| -> &Vec<String> { t.rows.iter().find(|r| r[proto] == p).unwrap() };
        let read_col = t
            .headers
            .iter()
            .position(|h| h == "readheavy_mops")
            .unwrap();
        let get = |p: &str| -> f64 { row(p)[read_col].parse().unwrap() };
        let (mesif, moesi, mesi) = (get("mesif"), get("moesi"), get("mesi"));
        assert!(
            mesif >= 0.999 * moesi,
            "read-heavy: MESIF {mesif} must not lose to MOESI {moesi}"
        );
        assert!(
            moesi > mesi,
            "read-heavy: MOESI {moesi} (c2c dirty sharing) must beat MESI {mesi} (memory)"
        );
        // Pure GetM streams are protocol-blind: the FAA high-contention
        // column must agree *exactly* across all three protocols.
        let faa_col = t.headers.iter().position(|h| h == "faa_hc_mops").unwrap();
        assert_eq!(row("mesif")[faa_col], row("moesi")[faa_col]);
        assert_eq!(row("mesif")[faa_col], row("mesi")[faa_col]);
    }

    #[test]
    fn fig12_mesif_helps_readers() {
        let t = fig12(ExpCtx::quick(), Machine::E5).unwrap();
        let gain = t.column_f64("mesif_gain").unwrap();
        assert!(
            gain.iter().all(|&g| g >= 0.9),
            "MESIF should never hurt: {gain:?}"
        );
        assert!(
            gain.iter().any(|&g| g > 1.05),
            "MESIF should visibly help read-mostly sharing: {gain:?}"
        );
    }

    #[test]
    fn ablation_backoff_reduces_failures() {
        let t = ablations(ExpCtx::quick(), Machine::E5).unwrap();
        let variant = t.column("variant").unwrap();
        let fail = t.column("fail_rate").unwrap();
        let get = |v: &str| -> f64 {
            t.rows.iter().find(|r| r[variant] == v).unwrap()[fail]
                .parse()
                .unwrap()
        };
        assert!(
            get("ladder-512") <= get("none") + 0.02,
            "heavy backoff must not increase the failure rate: {} vs {}",
            get("ladder-512"),
            get("none")
        );
    }
}
