//! The unified result type both backends produce.

use bounce_atomics::{LockShape, Primitive};
use serde::{Deserialize, Serialize};

/// Which backend produced a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// The `bounce-sim` coherence simulator.
    Sim,
    /// Real threads on the host machine.
    Native,
}

impl Backend {
    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        }
    }
}

/// One workload execution, reduced to the metrics the paper reports:
/// throughput, latency, fairness, energy (plus CAS success bookkeeping
/// and the transfer counts only the simulator can see).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// Workload label (`Workload::label()`).
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// Producing backend.
    pub backend: Backend,
    /// Thread count.
    pub n: usize,
    /// Completed ops per second (attempts for conditional primitives).
    pub throughput_ops_per_sec: f64,
    /// Useful ops per second (conditional successes when the workload
    /// has conditional primitives, completed ops otherwise).
    pub goodput_ops_per_sec: f64,
    /// Conditional (CAS/TAS) attempts per second; 0 when the workload
    /// has none.
    pub cond_attempts_per_sec: f64,
    /// Fraction of conditional attempts that failed.
    pub failure_rate: f64,
    /// Mean per-op latency, cycles.
    pub mean_latency_cycles: f64,
    /// Median per-op latency, cycles (0 when not collected).
    pub p50_latency_cycles: f64,
    /// 99th-percentile per-op latency, cycles (0 when not collected).
    pub p99_latency_cycles: f64,
    /// Jain fairness over per-thread success counts.
    pub jain: f64,
    /// Energy per op, nanojoules (None when the backend cannot measure).
    pub energy_per_op_nj: Option<f64>,
    /// Exclusive-line transfers by domain (simulator only).
    pub transfers_by_domain: Option<[u64; 5]>,
    /// Completed ops per primitive in `Primitive::ALL` order (simulator
    /// only).
    pub ops_by_prim: Option<[u64; 6]>,
    /// Ops per thread (for fairness inspection).
    pub per_thread_ops: Vec<u64>,
}

impl Measurement {
    /// Ops per second per thread.
    pub fn per_thread_throughput(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.throughput_ops_per_sec / self.n as f64
        }
    }

    /// Total transfers (simulator only).
    pub fn total_transfers(&self) -> Option<u64> {
        self.transfers_by_domain.map(|t| t.iter().sum())
    }

    /// Critical-section handoffs per second, for a measurement of a
    /// lock-handoff workload of the given `shape`.
    ///
    /// Handoffs = successful acquisitions. TAS/TTAS: the
    /// successful-TAS count. Ticket: two FAAs per handoff (take
    /// ticket + advance serving). MCS: exactly one SWAP per
    /// acquisition (its release CAS only succeeds when uncontended,
    /// so goodput would undercount).
    pub fn lock_handoffs_per_sec(&self, shape: LockShape) -> f64 {
        match shape {
            LockShape::Ticket => self.goodput_ops_per_sec / 2.0,
            LockShape::Mcs => {
                let total: u64 = self.per_thread_ops.iter().sum();
                let swaps = self.ops_by_prim.map_or(0, |o| {
                    o[Primitive::ALL
                        .iter()
                        .position(|p| *p == Primitive::Swap)
                        .unwrap()]
                });
                if total == 0 {
                    0.0
                } else {
                    self.throughput_ops_per_sec * swaps as f64 / total as f64
                }
            }
            _ => self.goodput_ops_per_sec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Measurement {
        Measurement {
            workload: "hc-faa".into(),
            machine: "test".into(),
            backend: Backend::Sim,
            n: 4,
            throughput_ops_per_sec: 4e7,
            goodput_ops_per_sec: 4e7,
            cond_attempts_per_sec: 0.0,
            failure_rate: 0.0,
            mean_latency_cycles: 100.0,
            p50_latency_cycles: 90.0,
            p99_latency_cycles: 300.0,
            jain: 1.0,
            energy_per_op_nj: Some(50.0),
            transfers_by_domain: Some([0, 1, 2, 3, 4]),
            ops_by_prim: None,
            per_thread_ops: vec![10, 10, 10, 10],
        }
    }

    #[test]
    fn derived_metrics() {
        let m = mk();
        assert!((m.per_thread_throughput() - 1e7).abs() < 1.0);
        assert_eq!(m.total_transfers(), Some(10));
    }

    #[test]
    fn backend_labels() {
        assert_eq!(Backend::Sim.label(), "sim");
        assert_eq!(Backend::Native.label(), "native");
    }

    #[test]
    fn lock_handoff_accounting_by_shape() {
        let mut m = mk();
        m.goodput_ops_per_sec = 2e6;
        m.throughput_ops_per_sec = 3e6;
        m.per_thread_ops = vec![30, 30];
        let mut by_prim = [0u64; 6];
        by_prim[Primitive::ALL
            .iter()
            .position(|p| *p == Primitive::Swap)
            .unwrap()] = 20;
        m.ops_by_prim = Some(by_prim);
        // TAS/TTAS report goodput; ticket halves it (two FAAs per
        // handoff); MCS scales total throughput by the SWAP share.
        assert_eq!(m.lock_handoffs_per_sec(LockShape::Tas), 2e6);
        assert_eq!(m.lock_handoffs_per_sec(LockShape::Ttas), 2e6);
        assert_eq!(m.lock_handoffs_per_sec(LockShape::Ticket), 1e6);
        assert_eq!(m.lock_handoffs_per_sec(LockShape::Mcs), 1e6);
        m.per_thread_ops = vec![0, 0];
        assert_eq!(m.lock_handoffs_per_sec(LockShape::Mcs), 0.0);
    }

    #[test]
    fn zero_thread_guard() {
        let mut m = mk();
        m.n = 0;
        assert_eq!(m.per_thread_throughput(), 0.0);
    }
}
