//! The native backend: real pinned threads executing real atomic
//! instructions, timed with `rdtsc`, with RAPL energy when available.
//!
//! This is what the paper actually ran on its two machines. On this
//! repository's single-CPU CI host, multi-thread runs merely timeslice —
//! they stay *correct* (the tests verify counts, not speed) but carry no
//! performance signal; use the simulator backend for the contention
//! experiments there. On a real multicore the same code produces
//! publishable curves.

use crate::measurement::{Backend, Measurement};
use crate::rapl::{delta_j, Rapl};
use bounce_atomics::locks::RawLock;
use bounce_atomics::{Backoff, CachePadded, LockKind, Primitive};
use bounce_topo::{HwThreadId, MachineTopology, Placement};
use bounce_workloads::{LockShape, Workload};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Native run configuration.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Measured duration.
    pub duration: Duration,
    /// Warmup before the measured window.
    pub warmup: Duration,
    /// Pin threads with `sched_setaffinity` (disable when the host has
    /// fewer CPUs than threads).
    pub pin: bool,
    /// Sample one op latency with `rdtsc` every `2^k` ops (0 disables).
    pub latency_sample_shift: u32,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(50),
            pin: true,
            latency_sample_shift: 6,
        }
    }
}

impl NativeConfig {
    /// A short configuration for tests.
    pub fn quick() -> Self {
        NativeConfig {
            duration: Duration::from_millis(30),
            warmup: Duration::from_millis(5),
            pin: false,
            latency_sample_shift: 4,
        }
    }
}

/// Read the timestamp counter.
#[inline]
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC is unprivileged on every Linux x86-64 configuration
    // we target.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::time::SystemTime;
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }
}

/// Pin the calling thread to one OS CPU. Returns false if the kernel
/// refused (CPU offline, cgroup restriction).
pub fn pin_to_cpu(cpu: usize) -> bool {
    #[cfg(target_os = "linux")]
    // SAFETY: CPU_SET/CPU_ZERO manipulate a local cpu_set_t;
    // sched_setaffinity(0, ...) affects only the calling thread.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        if cpu >= libc::CPU_SETSIZE as usize {
            return false;
        }
        libc::CPU_SET(cpu, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cpu;
        false
    }
}

/// Per-thread counters shared with the coordinator, each on its own
/// line.
struct ThreadCounters {
    ops: CachePadded<AtomicU64>,
    successes: CachePadded<AtomicU64>,
    failures: CachePadded<AtomicU64>,
    latency_sum: CachePadded<AtomicU64>,
    latency_count: CachePadded<AtomicU64>,
    /// Sampled per-op latencies (only the worker thread pushes; the
    /// coordinator reads after join).
    latency_samples: CachePadded<std::sync::Mutex<Vec<u64>>>,
}

impl ThreadCounters {
    fn new() -> Self {
        ThreadCounters {
            ops: CachePadded::new(AtomicU64::new(0)),
            successes: CachePadded::new(AtomicU64::new(0)),
            failures: CachePadded::new(AtomicU64::new(0)),
            latency_sum: CachePadded::new(AtomicU64::new(0)),
            latency_count: CachePadded::new(AtomicU64::new(0)),
            latency_samples: CachePadded::new(std::sync::Mutex::new(Vec::new())),
        }
    }
}

struct Shared {
    stop: AtomicBool,
    cells: Box<[CachePadded<AtomicU64>]>,
    line_words: SharedLineWords,
    lock: Option<Box<dyn RawLock>>,
    counters: Vec<ThreadCounters>,
}

// SAFETY: all interior state is atomics / Sync trait objects.
unsafe impl Sync for Shared {}

/// Whether the workload's recorded ops are conditional primitives.
fn workload_is_conditional(w: &Workload) -> bool {
    match w {
        Workload::CasRetryLoop { .. } | Workload::CasRetryLoopBackoff { .. } => true,
        Workload::HighContention { prim }
        | Workload::Diluted { prim, .. }
        | Workload::FalseSharing { prim }
        | Workload::MultiLine { prim, .. }
        | Workload::Zipf { prim, .. }
        | Workload::LowContention { prim, .. } => prim.is_conditional(),
        Workload::MixedReadWrite { prim, .. } => prim.is_conditional(),
        Workload::ReadScan { .. } | Workload::LockHandoff { .. } => false,
    }
}

/// Eight words forced onto one cache-line pair: the false-sharing cell.
#[repr(align(128))]
struct SharedLineWords {
    words: [AtomicU64; 8],
}

impl SharedLineWords {
    fn new() -> Self {
        SharedLineWords {
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn burn(cycles: u64) {
    for _ in 0..cycles {
        std::hint::spin_loop();
    }
}

/// The per-thread hot loop for one workload. Returns only when `stop`
/// is set.
fn thread_body(w: &Workload, tid: usize, shared: &Shared, sample_mask: u64) {
    let ctr = &shared.counters[tid];
    let mut local_ops = 0u64;
    let record = |ctr: &ThreadCounters, ok: bool, lat: Option<u64>| {
        ctr.ops.fetch_add(1, Ordering::Relaxed);
        if ok {
            ctr.successes.fetch_add(1, Ordering::Relaxed);
        } else {
            ctr.failures.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(l) = lat {
            ctr.latency_sum.fetch_add(l, Ordering::Relaxed);
            ctr.latency_count.fetch_add(1, Ordering::Relaxed);
            if let Ok(mut v) = ctr.latency_samples.try_lock() {
                if v.len() < 1 << 16 {
                    v.push(l);
                }
            }
        }
    };
    match *w {
        Workload::HighContention { prim } | Workload::Diluted { prim, .. } => {
            let work = match *w {
                Workload::Diluted { work, .. } => work,
                _ => 0,
            };
            let cell = &*shared.cells[0];
            // For CAS, mirror the simulator's blind-increment loop:
            // compare against the last observed value, write prev + 1.
            let mut expected = 0u64;
            while !shared.stop.load(Ordering::Relaxed) {
                if work > 0 {
                    burn(work);
                }
                let sample = local_ops & sample_mask == 0;
                let t0 = if sample { rdtsc() } else { 0 };
                let out = if prim == Primitive::Cas {
                    let o = prim.execute_native(cell, expected.wrapping_add(1), expected);
                    expected = if o.success {
                        expected.wrapping_add(1)
                    } else {
                        o.prev
                    };
                    o
                } else {
                    prim.execute_native(cell, 1, 0)
                };
                let lat = sample.then(|| rdtsc().saturating_sub(t0));
                record(ctr, out.success, lat);
                local_ops += 1;
            }
        }
        Workload::LowContention { prim, work } => {
            let cell = &*shared.cells[tid];
            while !shared.stop.load(Ordering::Relaxed) {
                if work > 0 {
                    burn(work);
                }
                let sample = local_ops & sample_mask == 0;
                let t0 = if sample { rdtsc() } else { 0 };
                let out = prim.execute_native(cell, 1, 0);
                let lat = sample.then(|| rdtsc().saturating_sub(t0));
                record(ctr, out.success, lat);
                local_ops += 1;
            }
        }
        Workload::CasRetryLoop { window, work } => {
            let cell = &*shared.cells[0];
            let mut backoff = Backoff::none();
            while !shared.stop.load(Ordering::Relaxed) {
                if work > 0 {
                    burn(work);
                }
                loop {
                    let old = cell.load(Ordering::Relaxed);
                    if window > 0 {
                        burn(window);
                    }
                    let sample = local_ops & sample_mask == 0;
                    let t0 = if sample { rdtsc() } else { 0 };
                    let out = Primitive::Cas.execute_native(cell, old.wrapping_add(1), old);
                    let lat = sample.then(|| rdtsc().saturating_sub(t0));
                    record(ctr, out.success, lat);
                    local_ops += 1;
                    if out.success || shared.stop.load(Ordering::Relaxed) {
                        backoff.reset();
                        break;
                    }
                    backoff.spin();
                }
            }
        }
        Workload::CasRetryLoopBackoff { window, backoff } => {
            let cell = &*shared.cells[0];
            let mut fails = 0usize;
            while !shared.stop.load(Ordering::Relaxed) {
                let old = cell.load(Ordering::Relaxed);
                if window > 0 {
                    burn(window);
                }
                let out = Primitive::Cas.execute_native(cell, old.wrapping_add(1), old);
                record(ctr, out.success, None);
                if out.success {
                    fails = 0;
                } else {
                    burn(backoff[fails.min(2)].max(1));
                    fails += 1;
                }
            }
        }
        Workload::FalseSharing { prim } => {
            let cell = &shared.line_words.words[tid % 8];
            while !shared.stop.load(Ordering::Relaxed) {
                let sample = local_ops & sample_mask == 0;
                let t0 = if sample { rdtsc() } else { 0 };
                let out = prim.execute_native(cell, 1, 0);
                let lat = sample.then(|| rdtsc().saturating_sub(t0));
                record(ctr, out.success, lat);
                local_ops += 1;
            }
        }
        Workload::MultiLine { prim, lines } => {
            let cell = &*shared.cells[tid % lines.max(1).min(shared.cells.len())];
            while !shared.stop.load(Ordering::Relaxed) {
                let sample = local_ops & sample_mask == 0;
                let t0 = if sample { rdtsc() } else { 0 };
                let out = prim.execute_native(cell, 1, 0);
                let lat = sample.then(|| rdtsc().saturating_sub(t0));
                record(ctr, out.success, lat);
                local_ops += 1;
            }
        }
        Workload::Zipf {
            prim,
            lines,
            theta,
            seed,
        } => {
            use rand::{Rng, SeedableRng};
            let zipf = bounce_workloads::Zipf::new(lines.max(1), theta);
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9E37_79B9));
            let n_cells = shared.cells.len();
            while !shared.stop.load(Ordering::Relaxed) {
                let k = zipf.sample(&mut rng) % n_cells;
                let cell = &*shared.cells[k];
                let out = prim.execute_native(cell, 1, 0);
                record(ctr, out.success, None);
                let _ = rng.gen_bool(0.5); // decorrelate consecutive picks cheaply
            }
        }
        Workload::MixedReadWrite { writers, prim } => {
            let cell = &*shared.cells[0];
            let is_writer = tid < writers;
            while !shared.stop.load(Ordering::Relaxed) {
                let out = if is_writer {
                    prim.execute_native(cell, 1, 0)
                } else {
                    Primitive::Load.execute_native(cell, 0, 0)
                };
                record(ctr, out.success, None);
            }
        }
        Workload::ReadScan {
            writers,
            writer_work,
        } => {
            // Native analog of the scan-reader shape: the host L1 can't
            // be forced to evict on cue, so scanners alternate the
            // shared load with a private-cell load — the contended-read
            // rate is what the row compares across backends.
            let cell = &*shared.cells[0];
            if tid < writers {
                while !shared.stop.load(Ordering::Relaxed) {
                    if writer_work > 0 {
                        burn(writer_work);
                    }
                    let out = Primitive::Faa.execute_native(cell, 1, 0);
                    record(ctr, out.success, None);
                }
            } else {
                let mine = &*shared.cells[tid];
                while !shared.stop.load(Ordering::Relaxed) {
                    let out = Primitive::Load.execute_native(cell, 0, 0);
                    record(ctr, out.success, None);
                    let out = Primitive::Load.execute_native(mine, 0, 0);
                    record(ctr, out.success, None);
                }
            }
        }
        Workload::LockHandoff { cs, noncs, .. } => {
            let lock = shared.lock.as_ref().expect("lock workload has a lock");
            while !shared.stop.load(Ordering::Relaxed) {
                let sample = local_ops & sample_mask == 0;
                let t0 = if sample { rdtsc() } else { 0 };
                let token = lock.lock();
                burn(cs.max(1));
                lock.unlock(token);
                let lat = sample.then(|| rdtsc().saturating_sub(t0));
                record(ctr, true, lat);
                burn(noncs.max(1));
                local_ops += 1;
            }
        }
    }
}

/// Run `workload` natively with `n` threads, pinned per `placement` on
/// `topo` (which should be the *host* topology from
/// `bounce_topo::host::detect()` when pinning).
pub fn native_measure(
    topo: &MachineTopology,
    workload: &Workload,
    n: usize,
    cfg: &NativeConfig,
) -> Measurement {
    assert!(n >= 1);
    let placement: Vec<HwThreadId> = if cfg.pin {
        Placement::Packed.assign(topo, n)
    } else {
        (0..n).map(HwThreadId).collect()
    };
    let lock = match workload {
        Workload::LockHandoff { shape, .. } => Some(match shape {
            LockShape::Tas => LockKind::Tas.build(),
            LockShape::Ttas => LockKind::Ttas.build(),
            LockShape::Ticket => LockKind::Ticket.build(),
            LockShape::Mcs => LockKind::Mcs.build(),
        }),
        _ => None,
    };
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        cells: bounce_atomics::padded::padded_array(n.max(1), 0),
        line_words: SharedLineWords::new(),
        lock,
        counters: (0..n).map(|_| ThreadCounters::new()).collect(),
    });
    let sample_mask = if cfg.latency_sample_shift == 0 {
        u64::MAX // never sample (x & MAX == 0 only for x = 0)
    } else {
        (1u64 << cfg.latency_sample_shift) - 1
    };
    let barrier = Arc::new(Barrier::new(n + 1));
    let mut handles = Vec::with_capacity(n);
    for (tid, hw) in placement.iter().enumerate() {
        let shared = Arc::clone(&shared);
        let barrier = Arc::clone(&barrier);
        let w = workload.clone();
        let pin = cfg.pin;
        let cpu = if pin {
            bounce_topo::host::os_cpu_of(topo, *hw)
        } else {
            0
        };
        handles.push(thread::spawn(move || {
            if pin {
                let _ = pin_to_cpu(cpu);
            }
            barrier.wait();
            thread_body(&w, tid, &shared, sample_mask);
        }));
    }
    barrier.wait();
    // Warmup, then snapshot, measure, snapshot again.
    thread::sleep(cfg.warmup);
    let rapl = Rapl::discover();
    let e0 = rapl.as_ref().and_then(|r| r.read_uj());
    let snap0: Vec<(u64, u64, u64)> = shared
        .counters
        .iter()
        .map(|c| {
            (
                c.ops.load(Ordering::Relaxed),
                c.successes.load(Ordering::Relaxed),
                c.failures.load(Ordering::Relaxed),
            )
        })
        .collect();
    let t0 = Instant::now();
    let c0 = rdtsc();
    thread::sleep(cfg.duration);
    let elapsed = t0.elapsed();
    let c1 = rdtsc();
    let snap1: Vec<(u64, u64, u64)> = shared
        .counters
        .iter()
        .map(|c| {
            (
                c.ops.load(Ordering::Relaxed),
                c.successes.load(Ordering::Relaxed),
                c.failures.load(Ordering::Relaxed),
            )
        })
        .collect();
    let e1 = rapl.as_ref().and_then(|r| r.read_uj());
    shared.stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }
    // Reduce.
    let per_thread_ops: Vec<u64> = snap0.iter().zip(&snap1).map(|(a, b)| b.0 - a.0).collect();
    let ops: u64 = per_thread_ops.iter().sum();
    let successes: u64 = snap0.iter().zip(&snap1).map(|(a, b)| b.1 - a.1).sum();
    let failures: u64 = snap0.iter().zip(&snap1).map(|(a, b)| b.2 - a.2).sum();
    let secs = elapsed.as_secs_f64();
    let per_thread_succ: Vec<f64> = snap0
        .iter()
        .zip(&snap1)
        .map(|(a, b)| (b.1 - a.1) as f64)
        .collect();
    let (lat_sum, lat_count) = shared.counters.iter().fold((0u64, 0u64), |(s, c), ctr| {
        (
            s + ctr.latency_sum.load(Ordering::Relaxed),
            c + ctr.latency_count.load(Ordering::Relaxed),
        )
    });
    let mean_latency = if lat_count == 0 {
        0.0
    } else {
        lat_sum as f64 / lat_count as f64
    };
    let mut samples: Vec<f64> = shared
        .counters
        .iter()
        .flat_map(|c| {
            c.latency_samples
                .lock()
                .map(|v| v.iter().map(|&x| x as f64).collect::<Vec<_>>())
                .unwrap_or_default()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = bounce_core::stats::percentile_sorted(&samples, 50.0);
    let p99 = bounce_core::stats::percentile_sorted(&samples, 99.0);
    let energy_per_op_nj = match (e0, e1) {
        (Some(a), Some(b)) if ops > 0 => delta_j(a, b).map(|j| j * 1e9 / ops as f64),
        _ => None,
    };
    let _tsc_span = c1.saturating_sub(c0); // diagnostic only
    Measurement {
        workload: workload.label(),
        machine: topo.name.clone(),
        backend: Backend::Native,
        n,
        throughput_ops_per_sec: ops as f64 / secs,
        goodput_ops_per_sec: successes as f64 / secs,
        // Natively, the per-op recorder only fires on the "real"
        // attempts (a retry loop's re-read is not recorded), so the
        // recorded op count doubles as the conditional attempt count
        // for workloads whose recorded op is conditional.
        cond_attempts_per_sec: if workload_is_conditional(workload) {
            (successes + failures) as f64 / secs
        } else {
            0.0
        },
        failure_rate: if successes + failures == 0 {
            0.0
        } else {
            failures as f64 / (successes + failures) as f64
        },
        mean_latency_cycles: mean_latency,
        p50_latency_cycles: p50,
        p99_latency_cycles: p99,
        jain: bounce_core::stats::jain(&per_thread_succ),
        energy_per_op_nj,
        transfers_by_domain: None,
        ops_by_prim: None,
        per_thread_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bounce_topo::host;

    fn host_topo() -> MachineTopology {
        host::detect()
    }

    #[test]
    fn rdtsc_monotone_enough() {
        let a = rdtsc();
        let b = rdtsc();
        assert!(b >= a);
    }

    #[test]
    fn pin_to_current_cpu_usually_works() {
        // CPU 0 exists everywhere we run.
        let ok = pin_to_cpu(0);
        #[cfg(target_os = "linux")]
        assert!(ok, "pinning to cpu0 should succeed on Linux");
        #[cfg(not(target_os = "linux"))]
        let _ = ok;
        // Out-of-range CPU is rejected, not UB.
        assert!(!pin_to_cpu(1 << 20));
    }

    #[test]
    fn native_hc_single_thread() {
        let topo = host_topo();
        let m = native_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            1,
            &NativeConfig::quick(),
        );
        assert!(
            m.throughput_ops_per_sec > 1e5,
            "{}",
            m.throughput_ops_per_sec
        );
        assert_eq!(m.failure_rate, 0.0);
        assert!(m.mean_latency_cycles > 0.0);
        assert!(m.p99_latency_cycles >= m.p50_latency_cycles);
        assert!(m.p50_latency_cycles > 0.0, "sampled percentiles collected");
        assert_eq!(m.backend, Backend::Native);
    }

    #[test]
    fn native_false_sharing_runs() {
        let topo = host_topo();
        let m = native_measure(
            &topo,
            &Workload::FalseSharing {
                prim: Primitive::Faa,
            },
            2,
            &NativeConfig::quick(),
        );
        assert!(m.throughput_ops_per_sec > 0.0);
        assert_eq!(m.failure_rate, 0.0);
    }

    #[test]
    fn native_cas_backoff_runs() {
        let topo = host_topo();
        let m = native_measure(
            &topo,
            &Workload::CasRetryLoopBackoff {
                window: 0,
                backoff: [16, 64, 256],
            },
            2,
            &NativeConfig::quick(),
        );
        assert!(m.goodput_ops_per_sec > 0.0);
        assert!(m.cond_attempts_per_sec > 0.0);
    }

    #[test]
    fn native_lc_runs_multithreaded() {
        let topo = host_topo();
        let m = native_measure(
            &topo,
            &Workload::LowContention {
                prim: Primitive::Faa,
                work: 0,
            },
            2,
            &NativeConfig::quick(),
        );
        assert_eq!(m.per_thread_ops.len(), 2);
        assert!(m.total_transfers().is_none(), "native can't see transfers");
        assert!(m.throughput_ops_per_sec > 0.0);
    }

    #[test]
    fn native_cas_loop_counts_outcomes() {
        let topo = host_topo();
        let m = native_measure(
            &topo,
            &Workload::CasRetryLoop { window: 0, work: 0 },
            2,
            &NativeConfig::quick(),
        );
        assert!(m.goodput_ops_per_sec > 0.0);
        assert!(m.failure_rate >= 0.0 && m.failure_rate < 1.0);
    }

    #[test]
    fn native_lock_handoff_all_shapes() {
        let topo = host_topo();
        for shape in LockShape::ALL {
            let m = native_measure(
                &topo,
                &Workload::LockHandoff {
                    shape,
                    cs: 10,
                    noncs: 10,
                },
                2,
                &NativeConfig::quick(),
            );
            assert!(
                m.throughput_ops_per_sec > 0.0,
                "{} produced no acquisitions",
                shape.label()
            );
        }
    }

    #[test]
    fn native_mixed_read_write() {
        let topo = host_topo();
        let m = native_measure(
            &topo,
            &Workload::MixedReadWrite {
                writers: 1,
                prim: Primitive::Faa,
            },
            3,
            &NativeConfig::quick(),
        );
        assert_eq!(m.per_thread_ops.len(), 3);
        assert!(m.throughput_ops_per_sec > 0.0);
    }
}
