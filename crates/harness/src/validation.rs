//! Campaign-wide model-vs-sim validation.
//!
//! Every scenario family the analytic model covers is swept through
//! *both* the simulator and [`Predictor::predict`], and the per-point
//! errors are reduced to one MAPE per (experiment, machine, metric).
//! `repro validate` serializes the result to `results/VALIDATION.json`;
//! CI regenerates that file and fails if any experiment's MAPE worsens
//! by more than two percentage points against the committed baseline.
//!
//! [`Predictor::predict`]: bounce_core::Predictor::predict

use crate::experiments::{measure, ExpCtx, ExpError, Machine};
use crate::measurement::Measurement;
use crate::modeltime::{self, predict_timed};
use bounce_atomics::Primitive;
use bounce_core::validate::{mape, max_ape, validated_rows, ValidationMetric, ValidationRow};
use bounce_core::{Prediction, Scenario};
use bounce_topo::{Placement, PlacementOrder};
use bounce_workloads::{LockShape, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// One validated experiment: a scenario family on one machine, reduced
/// to its per-point rows and summary error.
#[derive(Debug, Clone)]
pub struct ValidationEntry {
    /// Experiment id, e.g. `hc-faa` or `lock-mcs`.
    pub experiment: String,
    /// Machine label (`e5` / `knl`).
    pub machine: String,
    /// Which prediction field was validated.
    pub metric: String,
    /// Per-point (predicted, measured) rows.
    pub rows: Vec<ValidationRow>,
    /// Mean absolute percentage error over the rows.
    pub mape_pct: f64,
    /// Worst single-point absolute percentage error.
    pub max_ape_pct: f64,
}

/// The full campaign: every entry plus the sim/model time split.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Quick (CI-sized) or full sweeps.
    pub quick: bool,
    /// One entry per (experiment, machine, metric).
    pub entries: Vec<ValidationEntry>,
    /// Total simulator time, seconds (summed over points, so parallel
    /// runs report more than wall-clock).
    pub sim_seconds: f64,
    /// Total model-evaluation time, seconds.
    pub model_seconds: f64,
    /// Number of model predictions evaluated.
    pub model_calls: u64,
}

impl ValidationReport {
    /// Deterministic JSON rendering (modulo the timing fields — the CI
    /// gate compares only the per-experiment MAPEs).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if self.quick { "quick" } else { "full" }
        ));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"experiment\": \"{}\", \"machine\": \"{}\", \"metric\": \"{}\", \
                 \"points\": {}, \"mape_pct\": {:.3}, \"max_ape_pct\": {:.3}}}{}\n",
                e.experiment,
                e.machine,
                e.metric,
                e.rows.len(),
                e.mape_pct,
                e.max_ape_pct,
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"sim_seconds\": {:.3},\n", self.sim_seconds));
        s.push_str(&format!(
            "  \"model_seconds\": {:.6},\n",
            self.model_seconds
        ));
        s.push_str(&format!("  \"model_calls\": {}\n", self.model_calls));
        s.push_str("}\n");
        s
    }
}

/// One scenario family to validate: its sweep points, the metric to
/// compare, and the run-length scaling it needs.
struct Probe {
    id: &'static str,
    metric: ValidationMetric,
    points: Vec<(Workload, usize)>,
    /// Duration multiplier over the standard run config (locks are
    /// latency-bound and get 2×, matching fig 10).
    duration_scale: u64,
}

/// The validated sweep for one machine — the modeled subset of the
/// experiment registry, at the registry's own operating points.
fn probes(ctx: ExpCtx, machine: Machine) -> Vec<Probe> {
    let topo_threads = machine.topo().num_threads();
    let ns = machine.sweep_ns(ctx.quick);
    let multi: Vec<usize> = ns.iter().copied().filter(|&n| n >= 2).collect();
    let n_fixed = if ctx.quick { 4 } else { 16 };
    let works: &[u64] = if ctx.quick {
        &[0, 100, 3200]
    } else {
        &[0, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800]
    };
    let stripes: &[usize] = if ctx.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let readers: &[usize] = if ctx.quick {
        &[1, 3, 7]
    } else {
        &[1, 3, 7, 15, 23, 31]
    };
    let lock_ns: Vec<usize> = if ctx.quick {
        vec![2, 4]
    } else {
        match machine {
            Machine::E5 => vec![2, 4, 8, 18, 36, 72],
            Machine::Knl => vec![2, 4, 16, 64, 144, 288],
        }
    };

    let mut probes = Vec::new();
    // High contention: throughput per RMW primitive (figs 1, 7, 8)...
    for prim in Primitive::RMW {
        probes.push(Probe {
            id: match prim {
                Primitive::Swap => "hc-swap",
                Primitive::Tas => "hc-tas",
                Primitive::Faa => "hc-faa",
                _ => "hc-cas",
            },
            metric: ValidationMetric::Throughput,
            points: multi
                .iter()
                .map(|&n| (Workload::HighContention { prim }, n))
                .collect(),
            duration_scale: 1,
        });
    }
    // ...plus mean latency for FAA (fig 2) over the same runs.
    probes.push(Probe {
        id: "hc-faa",
        metric: ValidationMetric::LatencyCycles,
        points: multi
            .iter()
            .map(|&n| {
                (
                    Workload::HighContention {
                        prim: Primitive::Faa,
                    },
                    n,
                )
            })
            .collect(),
        duration_scale: 1,
    });
    // Low contention scaling (fig 6).
    probes.push(Probe {
        id: "lc-faa",
        metric: ValidationMetric::Throughput,
        points: ns
            .iter()
            .map(|&n| {
                (
                    Workload::LowContention {
                        prim: Primitive::Faa,
                        work: 0,
                    },
                    n,
                )
            })
            .collect(),
        duration_scale: 1,
    });
    // CAS retry loop goodput (fig 3).
    probes.push(Probe {
        id: "casloop-w30",
        metric: ValidationMetric::Throughput,
        points: multi
            .iter()
            .map(|&n| {
                (
                    Workload::CasRetryLoop {
                        window: 30,
                        work: 0,
                    },
                    n,
                )
            })
            .collect(),
        duration_scale: 1,
    });
    // Contention dilution (fig 9): work sweep at a fixed thread count.
    probes.push(Probe {
        id: "dil-faa",
        metric: ValidationMetric::Throughput,
        points: works
            .iter()
            .map(|&work| {
                (
                    Workload::Diluted {
                        prim: Primitive::Faa,
                        work,
                    },
                    n_fixed,
                )
            })
            .collect(),
        duration_scale: 1,
    });
    // Line striping (fig 13): stripe sweep at a fixed thread count.
    probes.push(Probe {
        id: "ml-faa",
        metric: ValidationMetric::Throughput,
        points: stripes
            .iter()
            .map(|&lines| {
                (
                    Workload::MultiLine {
                        prim: Primitive::Faa,
                        lines,
                    },
                    n_fixed,
                )
            })
            .collect(),
        duration_scale: 1,
    });
    // Reader/writer mix (fig 12).
    probes.push(Probe {
        id: "rw-1writer",
        metric: ValidationMetric::Throughput,
        points: readers
            .iter()
            .filter(|&&r| r < topo_threads)
            .map(|&r| {
                (
                    Workload::MixedReadWrite {
                        writers: 1,
                        prim: Primitive::Faa,
                    },
                    r + 1,
                )
            })
            .collect(),
        duration_scale: 1,
    });
    // The lock ladder (fig 10): handoff rate per shape.
    for shape in LockShape::ALL {
        probes.push(Probe {
            id: match shape {
                LockShape::Tas => "lock-tas",
                LockShape::Ttas => "lock-ttas",
                LockShape::Ticket => "lock-ticket",
                LockShape::Mcs => "lock-mcs",
            },
            metric: ValidationMetric::Handoffs(shape),
            points: lock_ns
                .iter()
                .map(|&n| {
                    (
                        Workload::LockHandoff {
                            shape,
                            cs: 100,
                            noncs: 100,
                        },
                        n,
                    )
                })
                .collect(),
            duration_scale: 2,
        });
    }
    probes
}

/// The measured counterpart of a prediction metric for one point.
fn measured_value(m: &Measurement, metric: &ValidationMetric, w: &Workload) -> f64 {
    match metric {
        // The model's CAS-loop throughput is goodput (successes/s); the
        // other families predict completed ops.
        ValidationMetric::Throughput => match w {
            Workload::CasRetryLoop { .. } => m.goodput_ops_per_sec,
            _ => m.throughput_ops_per_sec,
        },
        ValidationMetric::LatencyCycles => m.mean_latency_cycles,
        ValidationMetric::Handoffs(shape) => m.lock_handoffs_per_sec(*shape),
    }
}

/// Run the campaign: simulate and predict every probe point on both
/// machines, reducing each probe to a [`ValidationEntry`].
///
/// Sweep points shared between probes (e.g. the FAA HC sweep, validated
/// for both throughput and latency) are simulated once.
pub fn campaign_validation(ctx: ExpCtx) -> Result<ValidationReport, ExpError> {
    let model_before = modeltime::snapshot();
    let mut entries = Vec::new();
    let mut sim_seconds = 0.0;
    for machine in Machine::ALL {
        let topo = machine.topo();
        let model = machine.model();
        let order = PlacementOrder::new(Placement::Packed, &topo);
        let probes = probes(ctx, machine);
        // Simulate each distinct (workload, n, duration) point once.
        let mut keys: Vec<(Workload, usize, u64)> = Vec::new();
        let mut seen = BTreeSet::new();
        for p in &probes {
            for (w, n) in &p.points {
                if seen.insert((w.label(), *n, p.duration_scale)) {
                    keys.push((w.clone(), *n, p.duration_scale));
                }
            }
        }
        let results = crate::parallel::par_map(&keys, |(w, n, scale)| {
            let mut cfg = ctx.run_cfg(machine, &topo);
            cfg.duration_cycles *= *scale;
            let t0 = Instant::now();
            let r = measure(&topo, w, *n, &cfg);
            (t0.elapsed().as_secs_f64(), r)
        });
        let mut by_key: BTreeMap<(String, usize, u64), Measurement> = BTreeMap::new();
        for ((w, n, scale), (dt, r)) in keys.iter().zip(results) {
            sim_seconds += dt;
            by_key.insert((w.label(), *n, *scale), r?);
        }
        for p in probes {
            let triples: Vec<(Scenario, Prediction, f64)> = p
                .points
                .iter()
                .map(|(w, n)| {
                    let m = &by_key[&(w.label(), *n, p.duration_scale)];
                    let s = w
                        .scenario(order.threads_of(*n))
                        .expect("validated workloads map to scenarios");
                    let pred = predict_timed(&model, &s);
                    (s, pred, measured_value(m, &p.metric, w))
                })
                .collect();
            let rows = validated_rows(&triples, p.metric);
            entries.push(ValidationEntry {
                experiment: p.id.to_string(),
                machine: machine.label().to_string(),
                metric: p.metric.label(),
                mape_pct: mape(&rows),
                max_ape_pct: max_ape(&rows),
                rows,
            });
        }
    }
    let model_after = modeltime::snapshot();
    Ok(ValidationReport {
        quick: ctx.quick,
        entries,
        sim_seconds,
        model_seconds: model_after.seconds - model_before.seconds,
        model_calls: model_after.calls - model_before.calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_covers_both_machines() {
        let r = campaign_validation(ExpCtx::quick()).unwrap();
        // 14 probes per machine: 4 HC throughput + 1 HC latency + LC +
        // CAS loop + dilution + striping + mixed r/w + 4 lock shapes.
        assert_eq!(r.entries.len(), 28);
        for e in &r.entries {
            assert!(
                !e.rows.is_empty(),
                "{}/{} has no points",
                e.machine,
                e.experiment
            );
            assert!(
                e.mape_pct.is_finite() && e.mape_pct >= 0.0,
                "{}/{} MAPE {}",
                e.machine,
                e.experiment,
                e.mape_pct
            );
            assert!(e.max_ape_pct >= e.mape_pct - 1e-9);
        }
        assert_eq!(
            r.model_calls,
            r.entries.iter().map(|e| e.rows.len() as u64).sum()
        );
        let json = r.to_json();
        assert!(json.contains("\"experiment\": \"hc-faa\""));
        assert!(json.contains("\"metric\": \"handoffs-mcs\""));
        assert!(json.contains("\"mode\": \"quick\""));
    }
}
