//! Plain-text tables: the output format of every reproduced table and
//! figure (TSV for plotting, markdown for reading).

use std::fmt::Write as _;

/// A titled table of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title (e.g. `"Fig 1 (E3): HC throughput vs threads — Xeon E5"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must match `headers.len()`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header count.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {} in '{}'",
            row.len(),
            self.headers.len(),
            self.title
        );
        self.rows.push(row);
    }

    /// Append a row of displayable values.
    pub fn push_display<T: std::fmt::Display>(&mut self, row: &[T]) {
        self.push(row.iter().map(|v| v.to_string()).collect());
    }

    /// Tab-separated rendering (header line prefixed with `#`).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.headers.join("\t"));
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.join("\t"));
        }
        out
    }

    /// GitHub-flavoured markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Column index by header name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == name)
    }

    /// Parse a column as f64 (unparseable cells become NaN).
    pub fn column_f64(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.column(name)?;
        Some(
            self.rows
                .iter()
                .map(|r| r[idx].parse::<f64>().unwrap_or(f64::NAN))
                .collect(),
        )
    }
}

/// Format a float compactly for tables: large values in engineering
/// style, small ones with limited decimals.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e6 {
        format!("{:.3e}", v)
    } else if v.abs() >= 100.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.3}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_and_markdown_shapes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push_display(&[3, 4]);
        let tsv = t.to_tsv();
        assert!(tsv.starts_with("# demo\n"));
        assert!(tsv.contains("a\tb"));
        assert!(tsv.contains("3\t4"));
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn column_lookup_and_parse() {
        let mut t = Table::new("demo", &["n", "x"]);
        t.push(vec!["1".into(), "10.5".into()]);
        t.push(vec!["2".into(), "oops".into()]);
        assert_eq!(t.column("x"), Some(1));
        assert_eq!(t.column("zzz"), None);
        let xs = t.column_f64("x").unwrap();
        assert_eq!(xs[0], 10.5);
        assert!(xs[1].is_nan());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12.3456), "12.346");
        assert_eq!(fmt_f64(1234.5), "1234.5");
        assert!(fmt_f64(1.23e9).contains('e'));
    }
}
