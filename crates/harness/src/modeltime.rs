//! Model-evaluation accounting: every analytic prediction in the
//! harness goes through [`predict_timed`], which charges its wall-clock
//! cost to a process-wide counter. `repro --timings` reads the
//! [`snapshot`] to report model-evaluation time separately from
//! simulation time — the model is supposed to be ~free next to the
//! simulator, and this is the number that proves it.

use bounce_core::{Prediction, Predictor, Scenario};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static NANOS: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

/// Evaluate `model` on `scenario`, charging the elapsed wall-clock time
/// to the process-wide model-time counter.
///
/// This is the single prediction entry point for the experiment
/// registry and the validation campaign: routing every call through it
/// keeps the `--timings` split honest.
pub fn predict_timed(model: &impl Predictor, scenario: &Scenario) -> Prediction {
    let t0 = Instant::now();
    let p = model.predict(scenario);
    NANOS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    CALLS.fetch_add(1, Ordering::Relaxed);
    p
}

/// Accumulated model-evaluation cost since process start (or the last
/// [`reset`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelTime {
    /// Number of predictions evaluated.
    pub calls: u64,
    /// Total wall-clock seconds spent inside `Predictor::predict`.
    pub seconds: f64,
}

/// Read the counters without disturbing them.
pub fn snapshot() -> ModelTime {
    ModelTime {
        calls: CALLS.load(Ordering::Relaxed),
        seconds: NANOS.load(Ordering::Relaxed) as f64 / 1e9,
    }
}

/// Zero the counters (tests and per-phase accounting).
pub fn reset() {
    NANOS.store(0, Ordering::Relaxed);
    CALLS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bounce_atomics::Primitive;
    use bounce_core::{Model, ModelParams, Scenario};
    use bounce_topo::{presets, Placement};

    #[test]
    fn timed_prediction_matches_untimed_and_counts() {
        let topo = presets::tiny_test_machine();
        let model = Model::new(topo.clone(), ModelParams::tiny_default());
        let threads = Placement::Packed.assign(&topo, 4);
        let s = Scenario::high_contention(&threads, Primitive::Faa);
        let before = snapshot();
        let timed = predict_timed(&model, &s);
        let after = snapshot();
        assert_eq!(timed, model.predict(&s), "timing must not perturb values");
        assert_eq!(after.calls, before.calls + 1);
        assert!(after.seconds >= before.seconds);
    }
}
