//! Parallel campaign executor: fan independent simulation points across
//! host cores with *deterministic, sweep-ordered* results.
//!
//! Every sweep in this crate is embarrassingly parallel — each point
//! builds its own [`Engine`](bounce_sim::Engine) from its own config, so
//! points share no mutable state. The executor exploits that: a scoped
//! worker pool pulls point indices from an atomic counter, and results
//! are collected **by index**, so the output vector is identical to the
//! serial one regardless of which worker finished first. Parallel output
//! is byte-identical to `--jobs 1` output.
//!
//! Nesting is flattened rather than multiplied: when a task running
//! inside the pool starts its own sweep (e.g. a campaign point that
//! itself sweeps seeds), the inner sweep runs serially on that worker.
//! This keeps the thread count bounded by the configured job count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Requested job count: 0 = auto (host parallelism), n>=1 = exactly n.
static JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while executing inside a pool worker; nested sweeps then run
    /// serially instead of spawning a second level of threads.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Set the job count for subsequent sweeps. `0` restores the default
/// (one job per available host core).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The resolved job count (always >= 1).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Run `f(0..n)` and return the results in index order.
///
/// With `jobs() == 1`, inside an existing pool worker, or for a single
/// point, this is a plain serial loop on the calling thread — exactly
/// today's behaviour. Otherwise up to `jobs()` scoped workers claim
/// indices from a shared counter; each worker keeps its results tagged
/// with their index and the caller reassembles them in order, so the
/// returned vector never depends on thread scheduling.
pub fn par_run<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = jobs().min(n);
    if workers <= 1 || IN_POOL.with(|p| p.get()) {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    IN_POOL.with(|p| p.set(true));
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("sweep worker panicked"));
        }
    });
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Map `f` over a slice in parallel, preserving order ([`par_run`] over
/// the indices).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_run(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        set_jobs(4);
        let out = par_run(64, |i| {
            // Stagger completion so later indices often finish first.
            std::thread::sleep(std::time::Duration::from_micros(((64 - i) % 7) as u64));
            i * 3
        });
        set_jobs(0);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        set_jobs(1);
        let serial = par_run(20, |i| i * i + 1);
        set_jobs(4);
        let parallel = par_run(20, |i| i * i + 1);
        set_jobs(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_sweeps_run_serially() {
        set_jobs(4);
        let out = par_run(8, |i| {
            // The inner sweep must detect it is on a pool worker and not
            // spawn another level of threads.
            assert!(IN_POOL.with(|p| p.get()));
            par_run(4, move |j| i * 10 + j)
        });
        set_jobs(0);
        assert_eq!(out[2], vec![20, 21, 22, 23]);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = par_run(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(par_run(1, |i| i + 9), vec![9]);
        assert_eq!(par_map(&[5u64, 6], |x| x * 2), vec![10, 12]);
    }

    #[test]
    fn jobs_resolution() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }
}
