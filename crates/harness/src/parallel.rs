//! Parallel campaign executor: fan independent simulation points across
//! host cores with *deterministic, sweep-ordered* results and per-point
//! panic isolation.
//!
//! Every sweep in this crate is embarrassingly parallel — each point
//! builds its own [`Engine`](bounce_sim::Engine) from its own config, so
//! points share no mutable state. The executor exploits that: a scoped
//! worker pool pulls point indices from an atomic counter, and results
//! are collected **by index**, so the output vector is identical to the
//! serial one regardless of which worker finished first. Parallel output
//! is byte-identical to `--jobs 1` output.
//!
//! A panic in one point does not abort the sweep: each point runs under
//! [`std::panic::catch_unwind`], the remaining points finish, and the
//! caller gets a per-point [`Result`] identifying exactly which index
//! failed and with what payload ([`par_run_result`]). The infallible
//! [`par_run`] keeps the old contract — it resurfaces the first failed
//! point's panic on the calling thread, after every other point has
//! completed.
//!
//! Nesting is flattened rather than multiplied: when a task running
//! inside the pool starts its own sweep (e.g. a campaign point that
//! itself sweeps seeds), the inner sweep runs serially on that worker.
//! This keeps the thread count bounded by the configured job count.

use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Requested job count: 0 = auto (host parallelism), n>=1 = exactly n.
static JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while executing inside a pool worker; nested sweeps then run
    /// serially instead of spawning a second level of threads.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Set the job count for subsequent sweeps. `0` restores the default
/// (one job per available host core).
///
/// This mutates process-global state; concurrent callers (e.g. parallel
/// tests) race. Prefer the `_jobs` variants ([`par_run_jobs`],
/// [`par_run_result_jobs`]) which take the job count explicitly.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The resolved job count (always >= 1).
pub fn jobs() -> usize {
    resolve_jobs(JOBS.load(Ordering::Relaxed))
}

fn resolve_jobs(n: usize) -> usize {
    match n {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// A sweep point that panicked: its index and the captured payload.
#[derive(Debug)]
pub struct PointPanic {
    /// Index of the point that panicked (the argument `f` was called
    /// with).
    pub index: usize,
    /// The panic payload rendered to a string (`&str`/`String` payloads
    /// verbatim, anything else as a placeholder).
    pub payload: String,
}

impl fmt::Display for PointPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep point {} panicked: {}", self.index, self.payload)
    }
}

impl std::error::Error for PointPanic {}

/// Render a `catch_unwind` payload to a string.
pub fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f(0..n)` with an explicit job count and per-point panic
/// isolation; results come back in index order.
///
/// Every point runs to completion even if some panic: a panicking point
/// yields `Err(PointPanic)` in its slot while the others yield `Ok`.
pub fn par_run_result_jobs<U, F>(n: usize, jobs: usize, f: F) -> Vec<Result<U, PointPanic>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let guarded = |i: usize| {
        catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| PointPanic {
            index: i,
            payload: payload_string(p),
        })
    };
    let workers = resolve_jobs(jobs).min(n);
    if workers <= 1 || IN_POOL.with(|p| p.get()) {
        return (0..n).map(guarded).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Result<U, PointPanic>)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    IN_POOL.with(|p| p.set(true));
                    let mut local: Vec<(usize, Result<U, PointPanic>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, guarded(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // Workers only run `guarded`, which catches point panics; a
            // join failure would mean the pool machinery itself died.
            tagged.extend(h.join().expect("sweep worker infrastructure failed"));
        }
    });
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// [`par_run_result_jobs`] with the process-global job count.
pub fn par_run_result<U, F>(n: usize, f: F) -> Vec<Result<U, PointPanic>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_run_result_jobs(n, JOBS.load(Ordering::Relaxed), f)
}

/// Run `f(0..n)` with an explicit job count and return the results in
/// index order, resurfacing the first point panic after all points ran.
pub fn par_run_jobs<U, F>(n: usize, jobs: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<PointPanic> = None;
    for r in par_run_result_jobs(n, jobs, f) {
        match r {
            Ok(u) => out.push(u),
            Err(p) => {
                first_panic.get_or_insert(p);
            }
        }
    }
    if let Some(p) = first_panic {
        panic!("{p}");
    }
    out
}

/// Run `f(0..n)` and return the results in index order.
///
/// With `jobs() == 1`, inside an existing pool worker, or for a single
/// point, this is a plain serial loop on the calling thread — exactly
/// today's behaviour. Otherwise up to `jobs()` scoped workers claim
/// indices from a shared counter; each worker keeps its results tagged
/// with their index and the caller reassembles them in order, so the
/// returned vector never depends on thread scheduling.
///
/// # Panics
/// If a point panics, the panic is re-raised here — but only after every
/// other point has finished (see [`par_run_result`] for the isolating
/// form).
pub fn par_run<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_run_jobs(n, JOBS.load(Ordering::Relaxed), f)
}

/// Map `f` over a slice in parallel, preserving order ([`par_run`] over
/// the indices).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_run(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = par_run_jobs(64, 4, |i| {
            // Stagger completion so later indices often finish first.
            std::thread::sleep(std::time::Duration::from_micros(((64 - i) % 7) as u64));
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_run_jobs(20, 1, |i| i * i + 1);
        let parallel = par_run_jobs(20, 4, |i| i * i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_sweeps_run_serially() {
        let out = par_run_jobs(8, 4, |i| {
            // The inner sweep must detect it is on a pool worker and not
            // spawn another level of threads.
            assert!(IN_POOL.with(|p| p.get()));
            par_run(4, move |j| i * 10 + j)
        });
        assert_eq!(out[2], vec![20, 21, 22, 23]);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<usize> = par_run(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(par_run(1, |i| i + 9), vec![9]);
        assert_eq!(par_map(&[5u64, 6], |x| x * 2), vec![10, 12]);
    }

    #[test]
    fn jobs_resolution() {
        // `set_jobs` mutates process-global state shared with any
        // concurrently running test, so this test never calls it; it
        // checks the resolution function directly instead.
        assert_eq!(resolve_jobs(3), 3);
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(jobs(), resolve_jobs(JOBS.load(Ordering::Relaxed)));
    }

    #[test]
    fn panicking_point_leaves_others_intact() {
        // Point 3 of 8 panics; the other 7 must come back Ok and the
        // error must identify point 3's config.
        let results = par_run_result_jobs(8, 4, |i| {
            if i == 3 {
                panic!("bad config: threads=96 exceeds machine");
            }
            i * 2
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().expect_err("point 3 panicked");
                assert_eq!(e.index, 3);
                assert!(e.payload.contains("threads=96"), "payload: {}", e.payload);
                assert!(e.to_string().contains("point 3"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2, "point {i} intact");
            }
        }
    }

    #[test]
    fn panicking_point_isolated_in_serial_mode_too() {
        let results = par_run_result_jobs(4, 1, |i| {
            if i == 1 {
                panic!("boom {i}");
            }
            i
        });
        assert!(results[0].is_ok() && results[2].is_ok() && results[3].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().payload, "boom 1");
    }

    #[test]
    fn par_run_resurfaces_panic_after_all_points_finish() {
        use std::sync::atomic::AtomicUsize;
        static COMPLETED: AtomicUsize = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_run_jobs(6, 2, |i| {
                if i == 2 {
                    panic!("mid-sweep failure");
                }
                COMPLETED.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        let msg = payload_string(caught.expect_err("panic must resurface"));
        assert!(msg.contains("point 2"), "{msg}");
        assert!(msg.contains("mid-sweep failure"), "{msg}");
        assert_eq!(COMPLETED.load(Ordering::Relaxed), 5, "other points ran");
    }

    #[test]
    fn payload_string_handles_all_shapes() {
        assert_eq!(payload_string(Box::new("static str")), "static str");
        assert_eq!(payload_string(Box::new(String::from("owned"))), "owned");
        assert_eq!(payload_string(Box::new(42u32)), "non-string panic payload");
    }
}
