//! Measurement harness: runs the paper's workloads on either backend,
//! produces unified [`Measurement`]s, renders tables, and hosts the
//! E1..E12 experiment registry that regenerates every table and figure
//! of the evaluation.
//!
//! # Backends
//!
//! * [`simrun`] — the default: the `bounce-sim` coherence simulator
//!   configured as one of the paper's machines (Xeon E5 / Xeon Phi).
//!   Deterministic, runs anywhere, reports energy.
//! * [`native`] — real pinned threads issuing real atomic instructions
//!   with `rdtsc` timing and (when the host exposes it) RAPL energy.
//!   Meaningful only on a real multicore host; on this repository's CI
//!   it is exercised single-threaded for correctness.
//!
//! # Experiments
//!
//! [`experiments`] maps every reconstructed table/figure (see DESIGN.md)
//! to a function that produces a [`report::Table`]. The `repro` binary
//! in `bounce-bench` prints them; EXPERIMENTS.md records the outcomes.
//!
//! Every analytic prediction flows through [`modeltime::predict_timed`]
//! (one `Predictor` entry point, with model-evaluation time accounted
//! separately from sim time), and [`validation`] replays the whole
//! modeled campaign through sim *and* model to produce the
//! `results/VALIDATION.json` accuracy report CI gates on.

#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod measurement;
pub mod modeltime;
pub mod native;
pub mod parallel;
pub mod rapl;
pub mod report;
pub mod simrun;
pub mod sweeps;
pub mod validation;

pub use experiments::{ExpError, ExpResult};
pub use measurement::{Backend, Measurement};
pub use modeltime::{predict_timed, ModelTime};
pub use parallel::{jobs, par_map, par_run, par_run_result, set_jobs, PointPanic};
pub use report::Table;
pub use simrun::{sim_measure, sim_measure_seeds, try_sim_measure, SeededSummary, SimRunConfig};
pub use validation::{campaign_validation, ValidationEntry, ValidationReport};
