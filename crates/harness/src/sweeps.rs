//! Generic sweep helpers: run a workload across thread counts (or any
//! variants) and tabulate the standard metric set. The experiment
//! registry specialises these; downstream users get them directly.

use crate::measurement::Measurement;
use crate::parallel::par_map;
use crate::report::{fmt_f64, Table};
use crate::simrun::{sim_measure, try_sim_measure, SimRunConfig};
use bounce_sim::SimError;
use bounce_topo::MachineTopology;
use bounce_workloads::Workload;

/// Run `workload` for every thread count in `ns` on the simulated
/// machine. Points run on the parallel executor; results come back in
/// sweep order (see [`crate::parallel`]).
///
/// # Panics
/// Panics if any point trips the forward-progress watchdog; use
/// [`try_sweep_threads`] for structured errors.
pub fn sweep_threads(
    topo: &MachineTopology,
    workload: &Workload,
    ns: &[usize],
    cfg: &SimRunConfig,
) -> Vec<Measurement> {
    par_map(ns, |&n| sim_measure(topo, workload, n, cfg))
}

/// [`sweep_threads`] surfacing the first watchdog diagnosis instead of
/// panicking. Every point still runs (points are independent); on error
/// the lowest-index failing point's `SimError` is returned.
pub fn try_sweep_threads(
    topo: &MachineTopology,
    workload: &Workload,
    ns: &[usize],
    cfg: &SimRunConfig,
) -> Result<Vec<Measurement>, SimError> {
    par_map(ns, |&n| try_sim_measure(topo, workload, n, cfg))
        .into_iter()
        .collect()
}

/// Run every workload variant at a fixed thread count, in parallel.
///
/// # Panics
/// Panics if any point trips the forward-progress watchdog; use
/// [`try_sweep_workloads`] for structured errors.
pub fn sweep_workloads(
    topo: &MachineTopology,
    workloads: &[Workload],
    n: usize,
    cfg: &SimRunConfig,
) -> Vec<Measurement> {
    par_map(workloads, |w| sim_measure(topo, w, n, cfg))
}

/// [`sweep_workloads`] surfacing the first watchdog diagnosis instead of
/// panicking.
pub fn try_sweep_workloads(
    topo: &MachineTopology,
    workloads: &[Workload],
    n: usize,
    cfg: &SimRunConfig,
) -> Result<Vec<Measurement>, SimError> {
    par_map(workloads, |w| try_sim_measure(topo, w, n, cfg))
        .into_iter()
        .collect()
}

/// Tabulate measurements with the full standard metric set.
pub fn measurements_table(title: &str, measurements: &[Measurement]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "workload",
            "n",
            "throughput_mops",
            "goodput_mops",
            "fail_rate",
            "mean_lat_cycles",
            "p99_lat_cycles",
            "jain",
            "energy_nj_per_op",
        ],
    );
    for m in measurements {
        t.push(vec![
            m.workload.clone(),
            m.n.to_string(),
            fmt_f64(m.throughput_ops_per_sec / 1e6),
            fmt_f64(m.goodput_ops_per_sec / 1e6),
            fmt_f64(m.failure_rate),
            fmt_f64(m.mean_latency_cycles),
            fmt_f64(m.p99_latency_cycles),
            fmt_f64(m.jain),
            m.energy_per_op_nj
                .map(fmt_f64)
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    t
}

/// Serialize measurements as deterministic JSON — the machine-readable
/// twin of [`measurements_table`]. Carries the full standard metric
/// set, including the first-class p50/p99 latency percentiles the
/// engine now reports directly ([`bounce_sim::SimReport`]), so
/// downstream tooling consumes them from here instead of re-deriving
/// percentiles from per-thread histograms or parsing TSV. Rendering is
/// byte-deterministic: field order is fixed and floats go through the
/// same [`fmt_f64`] as the tables.
pub fn measurements_json(id: &str, measurements: &[Measurement]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"id\": \"{id}\",\n"));
    s.push_str("  \"points\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"machine\": \"{}\", \"backend\": \"{}\", \"n\": {}, \
             \"throughput_mops\": {}, \"goodput_mops\": {}, \"fail_rate\": {}, \
             \"mean_lat_cycles\": {}, \"p50_lat_cycles\": {}, \"p99_lat_cycles\": {}, \
             \"jain\": {}, \"energy_nj_per_op\": {}}}{}\n",
            m.workload,
            m.machine,
            m.backend.label(),
            m.n,
            fmt_f64(m.throughput_ops_per_sec / 1e6),
            fmt_f64(m.goodput_ops_per_sec / 1e6),
            fmt_f64(m.failure_rate),
            fmt_f64(m.mean_latency_cycles),
            fmt_f64(m.p50_latency_cycles),
            fmt_f64(m.p99_latency_cycles),
            fmt_f64(m.jain),
            m.energy_per_op_nj
                .map(fmt_f64)
                .unwrap_or_else(|| "null".into()),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pair measurements with model predictions into validation rows (the
/// Fig 7 workflow as a reusable step).
pub fn compare_throughput(
    measurements: &[Measurement],
    predictions: &[f64],
) -> Vec<bounce_core::ValidationRow> {
    assert_eq!(
        measurements.len(),
        predictions.len(),
        "measurement/prediction length mismatch"
    );
    measurements
        .iter()
        .zip(predictions)
        .map(|(m, &p)| bounce_core::ValidationRow {
            n: m.n,
            predicted: p,
            measured: m.throughput_ops_per_sec,
        })
        .collect()
}

/// Tabulate validation rows with a MAPE footer.
pub fn comparison_table(title: &str, rows: &[bounce_core::ValidationRow]) -> Table {
    let mut t = Table::new(title, &["n", "measured", "predicted", "err_pct"]);
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            fmt_f64(r.measured),
            fmt_f64(r.predicted),
            fmt_f64(r.ape_pct()),
        ]);
    }
    t.push(vec![
        "MAPE".into(),
        String::new(),
        String::new(),
        fmt_f64(bounce_core::mape(rows)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use bounce_atomics::Primitive;
    use bounce_topo::presets;

    fn quick(topo: &MachineTopology) -> SimRunConfig {
        let mut c = SimRunConfig::for_machine(topo);
        c.duration_cycles = 200_000;
        c
    }

    #[test]
    fn thread_sweep_produces_one_measurement_per_n() {
        let topo = presets::tiny_test_machine();
        let cfg = quick(&topo);
        let w = Workload::HighContention {
            prim: Primitive::Faa,
        };
        let ms = sweep_threads(&topo, &w, &[1, 2, 4], &cfg);
        assert_eq!(ms.len(), 3);
        assert_eq!(ms[0].n, 1);
        assert_eq!(ms[2].n, 4);
    }

    #[test]
    fn workload_sweep_covers_battery() {
        let topo = presets::tiny_test_machine();
        let cfg = quick(&topo);
        let battery = Workload::standard_battery();
        let ms = sweep_workloads(&topo, &battery[..4], 2, &cfg);
        assert_eq!(ms.len(), 4);
        let labels: std::collections::HashSet<_> = ms.iter().map(|m| m.workload.clone()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn comparison_roundtrip() {
        let topo = presets::tiny_test_machine();
        let cfg = quick(&topo);
        let w = Workload::HighContention {
            prim: Primitive::Faa,
        };
        let ms = sweep_threads(&topo, &w, &[2, 4], &cfg);
        let preds: Vec<f64> = ms.iter().map(|m| m.throughput_ops_per_sec * 1.1).collect();
        let rows = compare_throughput(&ms, &preds);
        assert_eq!(rows.len(), 2);
        let t = comparison_table("demo", &rows);
        assert_eq!(t.rows.len(), 3, "2 rows + MAPE footer");
        let mape_cell: f64 = t.rows[2][3].parse().unwrap();
        assert!((mape_cell - 10.0).abs() < 0.5, "10% deliberate error");
    }

    #[test]
    #[should_panic]
    fn comparison_rejects_length_mismatch() {
        let rows: Vec<Measurement> = Vec::new();
        let _ = compare_throughput(&rows, &[1.0]);
    }

    #[test]
    fn json_carries_latency_percentiles_and_is_deterministic() {
        let topo = presets::tiny_test_machine();
        let cfg = quick(&topo);
        let w = Workload::HighContention {
            prim: Primitive::Faa,
        };
        let ms = sweep_threads(&topo, &w, &[2, 4], &cfg);
        let json = measurements_json("hc-faa", &ms);
        assert!(json.contains("\"p50_lat_cycles\":"), "{json}");
        assert!(json.contains("\"p99_lat_cycles\":"), "{json}");
        assert!(json.contains("\"id\": \"hc-faa\""), "{json}");
        // Two points, comma-separated, no trailing comma.
        assert_eq!(json.matches("\"workload\"").count(), 2);
        assert!(!json.contains("},\n  ]"), "trailing comma: {json}");
        // Deterministic rendering: same measurements, same bytes.
        assert_eq!(json, measurements_json("hc-faa", &ms));
    }

    #[test]
    fn table_has_full_metric_set() {
        let topo = presets::tiny_test_machine();
        let cfg = quick(&topo);
        let ms = sweep_threads(
            &topo,
            &Workload::CasRetryLoop {
                window: 20,
                work: 0,
            },
            &[2],
            &cfg,
        );
        let t = measurements_table("demo", &ms);
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.headers.len(), 9);
        // The fail-rate cell parses and is a probability.
        let f: f64 = t.rows[0][4].parse().unwrap();
        assert!((0.0..=1.0).contains(&f));
    }
}
