//! Golden-output regression test for `--exact` mode: the fixed
//! full-budget run must keep producing byte-identical experiment TSVs
//! across refactors of the engine internals (event queue, run-length
//! plumbing). The fixtures under `tests/golden/` were captured from the
//! pre-calendar-queue BinaryHeap engine, so any drift here means the
//! scheduler swap changed simulation semantics.
//!
//! To re-bless after an *intentional* semantic change:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p bounce-harness --test exact_golden
//! ```

use bounce_harness::experiments::{self, ExpCtx, Machine};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn check_golden(name: &str, tsv: &str) {
    let path = golden_dir().join(format!("{name}.tsv"));
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, tsv).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); bless it first", path.display()));
    assert!(
        tsv == want,
        "{name}: --exact output drifted from the golden fixture.\n\
         If the change is intentional, re-bless with BLESS_GOLDEN=1.\n\
         --- got ---\n{tsv}\n--- want ---\n{want}"
    );
}

#[test]
fn exact_fig1_e5_matches_golden() {
    let ctx = ExpCtx::quick().with_exact(true);
    let t = experiments::fig1(ctx, Machine::E5).expect("fig1 must run");
    check_golden("fig1-e5", &t.to_tsv());
}

#[test]
fn exact_fig4_e5_matches_golden() {
    let ctx = ExpCtx::quick().with_exact(true);
    let t = experiments::fig4(ctx, Machine::E5).expect("fig4 must run");
    check_golden("fig4-e5", &t.to_tsv());
}
