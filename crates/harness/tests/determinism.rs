//! Determinism regression test for the parallel campaign executor: a
//! sweep run with `jobs = 4` must produce Measurement vectors that are
//! field-for-field identical (exact f64 bits included) to `jobs = 1`.
//!
//! All comparisons use exact equality on purpose — the executor's
//! contract is that parallelism changes *nothing* about the results,
//! only the wall-clock. Every simulation point owns its engine and its
//! RNG, and results are collected by sweep index.

use bounce_atomics::Primitive;
use bounce_harness::campaign::{default_cfg, fit_and_validate, TrainSplit};
use bounce_harness::sweeps::{sweep_threads, sweep_workloads};
use bounce_harness::{set_jobs, sim_measure_seeds, Measurement, SimRunConfig};
use bounce_topo::presets;
use bounce_workloads::Workload;

fn assert_meas_eq(a: &Measurement, b: &Measurement, what: &str) {
    assert_eq!(a.workload, b.workload, "{what}: workload");
    assert_eq!(a.machine, b.machine, "{what}: machine");
    assert_eq!(a.backend, b.backend, "{what}: backend");
    assert_eq!(a.n, b.n, "{what}: n");
    let bits = f64::to_bits;
    assert_eq!(
        bits(a.throughput_ops_per_sec),
        bits(b.throughput_ops_per_sec),
        "{what}: throughput"
    );
    assert_eq!(
        bits(a.goodput_ops_per_sec),
        bits(b.goodput_ops_per_sec),
        "{what}: goodput"
    );
    assert_eq!(
        bits(a.cond_attempts_per_sec),
        bits(b.cond_attempts_per_sec),
        "{what}: cond_attempts"
    );
    assert_eq!(
        bits(a.failure_rate),
        bits(b.failure_rate),
        "{what}: failure_rate"
    );
    assert_eq!(
        bits(a.mean_latency_cycles),
        bits(b.mean_latency_cycles),
        "{what}: mean_latency"
    );
    assert_eq!(
        bits(a.p50_latency_cycles),
        bits(b.p50_latency_cycles),
        "{what}: p50"
    );
    assert_eq!(
        bits(a.p99_latency_cycles),
        bits(b.p99_latency_cycles),
        "{what}: p99"
    );
    assert_eq!(bits(a.jain), bits(b.jain), "{what}: jain");
    assert_eq!(
        a.energy_per_op_nj.map(bits),
        b.energy_per_op_nj.map(bits),
        "{what}: energy"
    );
    assert_eq!(
        a.transfers_by_domain, b.transfers_by_domain,
        "{what}: transfers_by_domain"
    );
    assert_eq!(a.ops_by_prim, b.ops_by_prim, "{what}: ops_by_prim");
    assert_eq!(a.per_thread_ops, b.per_thread_ops, "{what}: per_thread_ops");
}

/// One test body covers every wired-through sweep so the global job
/// count is never mutated concurrently by sibling tests.
#[test]
fn parallel_sweeps_match_serial_field_for_field() {
    let topo = presets::tiny_test_machine();
    let cfg = SimRunConfig::for_machine(&topo).quick();
    let hc = Workload::HighContention {
        prim: Primitive::Faa,
    };
    let ns = [1usize, 2, 4, 6, 8];

    // sweep_threads
    set_jobs(1);
    let serial = sweep_threads(&topo, &hc, &ns, &cfg);
    set_jobs(4);
    let parallel = sweep_threads(&topo, &hc, &ns, &cfg);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_meas_eq(a, b, &format!("sweep_threads n={}", a.n));
    }

    // sweep_workloads
    let battery = Workload::standard_battery();
    set_jobs(1);
    let serial = sweep_workloads(&topo, &battery[..4], 4, &cfg);
    set_jobs(4);
    let parallel = sweep_workloads(&topo, &battery[..4], 4, &cfg);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_meas_eq(a, b, &format!("sweep_workloads {}", a.workload));
    }

    // sim_measure_seeds (Random arbitration actually consumes the RNG)
    let mut rcfg = cfg.clone();
    rcfg.params.arbitration = bounce_sim::ArbitrationPolicy::Random;
    set_jobs(1);
    let serial = sim_measure_seeds(&topo, &hc, 4, &rcfg, &[1, 2, 3, 4, 5, 6]);
    set_jobs(4);
    let parallel = sim_measure_seeds(&topo, &hc, 4, &rcfg, &[1, 2, 3, 4, 5, 6]);
    assert_eq!(
        serial.mean_throughput.to_bits(),
        parallel.mean_throughput.to_bits(),
        "seeded mean throughput"
    );
    assert_eq!(
        serial.throughput_cv.to_bits(),
        parallel.throughput_cv.to_bits(),
        "seeded cv"
    );
    for (a, b) in serial.runs.iter().zip(&parallel.runs) {
        assert_meas_eq(a, b, "sim_measure_seeds");
    }

    // fit_and_validate campaign: measurements and fitted params
    let ccfg = default_cfg(&topo, 300_000);
    set_jobs(1);
    let serial = fit_and_validate(
        &topo,
        Primitive::Faa,
        &[1, 2, 4, 8],
        &ccfg,
        &bounce_core::ModelParams::tiny_default(),
        TrainSplit::All,
    );
    set_jobs(4);
    let parallel = fit_and_validate(
        &topo,
        Primitive::Faa,
        &[1, 2, 4, 8],
        &ccfg,
        &bounce_core::ModelParams::tiny_default(),
        TrainSplit::All,
    );
    for (a, b) in serial.measurements.iter().zip(&parallel.measurements) {
        assert_meas_eq(a, b, &format!("campaign n={}", a.n));
    }
    assert_eq!(
        serial.throughput_mape().to_bits(),
        parallel.throughput_mape().to_bits(),
        "campaign MAPE"
    );

    set_jobs(0);
}
