//! Adaptive run-length properties at the harness level:
//!
//! * accuracy — an adaptive run's throughput must land within the
//!   configured confidence band of the fixed full-budget measurement
//!   for randomized workload/thread-count points;
//! * determinism — the adaptive early-stop decision is a function of
//!   simulated time only, so repeated runs and parallel sweeps are
//!   bit-identical.

use bounce_atomics::Primitive;
use bounce_harness::{set_jobs, sim_measure, SimRunConfig};
use bounce_sim::RunLength;
use bounce_topo::presets;
use bounce_workloads::Workload;
use proptest::prelude::*;

/// Tolerance for adaptive vs fixed throughput: the adaptive run stops
/// once the *estimated* 95% relative CI half-width falls below
/// `rel_ci`; batch-means estimates on short windows are themselves
/// noisy, so allow a few half-widths of slack.
fn tolerance(rel_ci: f64) -> f64 {
    (3.0 * rel_ci).max(0.10)
}

fn workload_from(raw: u8) -> Workload {
    match raw % 4 {
        0 => Workload::HighContention {
            prim: Primitive::Faa,
        },
        1 => Workload::HighContention {
            prim: Primitive::Swap,
        },
        2 => Workload::LowContention {
            prim: Primitive::Faa,
            work: 50,
        },
        _ => Workload::CasRetryLoop {
            window: 30,
            work: 0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adaptive throughput stays within the configured confidence band
    /// of the fixed-mode ground truth.
    #[test]
    fn adaptive_matches_fixed_within_ci(raw_w in 0u8..4, raw_n in 0u8..3) {
        let topo = presets::tiny_test_machine();
        let w = workload_from(raw_w);
        let n = [1usize, 2, 4][raw_n as usize];
        let fixed_cfg = SimRunConfig::for_machine(&topo).quick();
        let adaptive_cfg = fixed_cfg.clone().with_run_length(RunLength::adaptive());
        let fixed = sim_measure(&topo, &w, n, &fixed_cfg);
        let adaptive = sim_measure(&topo, &w, n, &adaptive_cfg);
        let rel_ci = match RunLength::adaptive() {
            RunLength::Adaptive { rel_ci, .. } => rel_ci,
            RunLength::Fixed { .. } => unreachable!(),
        };
        let rel_err = (adaptive.throughput_ops_per_sec - fixed.throughput_ops_per_sec).abs()
            / fixed.throughput_ops_per_sec;
        prop_assert!(
            rel_err <= tolerance(rel_ci),
            "{} n={}: adaptive {:.3e} vs fixed {:.3e} ops/s, rel err {:.3} > tol {:.3}",
            w.label(), n,
            adaptive.throughput_ops_per_sec, fixed.throughput_ops_per_sec,
            rel_err, tolerance(rel_ci)
        );
    }
}

#[test]
fn adaptive_is_deterministic_and_jobs_invariant() {
    let topo = presets::tiny_test_machine();
    let w = Workload::HighContention {
        prim: Primitive::Faa,
    };
    let cfg = SimRunConfig::for_machine(&topo)
        .quick()
        .with_run_length(RunLength::adaptive());
    let a = sim_measure(&topo, &w, 4, &cfg);
    set_jobs(4);
    let b = sim_measure(&topo, &w, 4, &cfg);
    set_jobs(0);
    assert_eq!(
        a.throughput_ops_per_sec.to_bits(),
        b.throughput_ops_per_sec.to_bits(),
        "adaptive stop decision must not depend on host parallelism"
    );
    assert_eq!(
        a.mean_latency_cycles.to_bits(),
        b.mean_latency_cycles.to_bits()
    );
    assert_eq!(a.per_thread_ops, b.per_thread_ops);
}

#[test]
fn adaptive_terminates_early_on_steady_workload() {
    // A steady high-contention FAA loop converges well before the
    // budget; the throughput numbers must reflect the shorter window
    // (nonzero, same order of magnitude as fixed).
    let topo = presets::tiny_test_machine();
    let w = Workload::HighContention {
        prim: Primitive::Faa,
    };
    let fixed_cfg = SimRunConfig::for_machine(&topo).quick();
    let adaptive_cfg = fixed_cfg.clone().with_run_length(RunLength::adaptive());
    let fixed = sim_measure(&topo, &w, 4, &fixed_cfg);
    let adaptive = sim_measure(&topo, &w, 4, &adaptive_cfg);
    // Early termination shows up as fewer total retired ops at a
    // near-identical rate.
    let fixed_ops: u64 = fixed.per_thread_ops.iter().sum();
    let adaptive_ops: u64 = adaptive.per_thread_ops.iter().sum();
    assert!(
        adaptive_ops < fixed_ops / 2,
        "expected an early stop: adaptive {adaptive_ops} ops vs fixed {fixed_ops}"
    );
}
