//! Property tests on the reporting layer: tables render losslessly and
//! `fmt_f64` output always round-trips through `parse::<f64>()`.

use bounce_harness::report::{fmt_f64, Table};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every cell written is present in the TSV, row count and arity
    /// preserved.
    #[test]
    fn tsv_is_lossless(
        headers in proptest::collection::vec("[a-z_]{1,10}", 1..6),
        rows in proptest::collection::vec(
            proptest::collection::vec("[A-Za-z0-9.]{0,12}", 1..6),
            0..20,
        ),
    ) {
        let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new("prop", &hrefs);
        let mut pushed = 0;
        for r in rows {
            if r.len() == headers.len() {
                t.push(r);
                pushed += 1;
            }
        }
        let tsv = t.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        prop_assert_eq!(lines.len(), 2 + pushed, "title + header + rows");
        prop_assert_eq!(lines[1].split('\t').count(), headers.len());
        for (i, row) in t.rows.iter().enumerate() {
            let cells: Vec<&str> = lines[2 + i].split('\t').collect();
            prop_assert_eq!(cells.len(), headers.len());
            for (c, expect) in cells.iter().zip(row) {
                prop_assert_eq!(*c, expect.as_str());
            }
        }
    }

    /// `fmt_f64` output parses back to within float-formatting rounding
    /// of the original (0.1% relative, to cover the 3-decimal branch).
    #[test]
    fn fmt_f64_roundtrips(v in -1e12f64..1e12) {
        let s = fmt_f64(v);
        let back: f64 = s.parse().unwrap();
        if v == 0.0 {
            prop_assert_eq!(back, 0.0);
        } else if v.abs() >= 0.01 {
            let rel = ((back - v) / v).abs();
            prop_assert!(rel < 1e-2, "{v} -> '{s}' -> {back}");
        }
    }

    /// Markdown rendering has the right number of pipe-rows.
    #[test]
    fn markdown_row_count(nrows in 0usize..30) {
        let mut t = Table::new("md", &["a", "b"]);
        for i in 0..nrows {
            t.push(vec![i.to_string(), (i * 2).to_string()]);
        }
        let md = t.to_markdown();
        let pipe_rows = md.lines().filter(|l| l.starts_with('|')).count();
        // header + separator + rows
        prop_assert_eq!(pipe_rows, 2 + nrows);
    }

    /// column_f64 returns NaN exactly for unparseable cells.
    #[test]
    fn column_f64_nan_mapping(vals in proptest::collection::vec(prop_oneof![
        (-1e9f64..1e9).prop_map(|v| v.to_string()),
        Just("not-a-number".to_string()),
    ], 1..20)) {
        let mut t = Table::new("c", &["x"]);
        for v in &vals {
            t.push(vec![v.clone()]);
        }
        let parsed = t.column_f64("x").unwrap();
        for (p, v) in parsed.iter().zip(&vals) {
            prop_assert_eq!(p.is_nan(), v.parse::<f64>().is_err());
        }
    }
}
