//! Fabric fault-injection determinism: the fault schedule is a pure
//! function of `SimParams::seed`, so a faulted sweep must produce
//! bit-identical measurements at any `--jobs` count, and the all-zero
//! default config must leave the fault-free path untouched byte for
//! byte even though the fault code is compiled in.
//!
//! Comparisons go through `format!("{:?}")` of the full `Measurement`
//! vector: `Debug` renders every field including exact shortest
//! round-trip floats, so two equal strings mean field-for-field
//! bit-equality. One test body covers both properties because it
//! mutates the global job count, which sibling tests in the same
//! process would race on (same reason `determinism.rs` is one body).

use bounce_atomics::Primitive;
use bounce_harness::sweeps::{measurements_json, sweep_threads};
use bounce_harness::{set_jobs, SimRunConfig};
use bounce_sim::{FabricFaultConfig, RetryPolicy};
use bounce_topo::presets;
use bounce_workloads::Workload;

const NS: [usize; 3] = [2, 4, 8];

fn faulted_cfg(fabric: FabricFaultConfig, retry: RetryPolicy) -> SimRunConfig {
    let topo = presets::tiny_test_machine();
    SimRunConfig::for_machine(&topo)
        .quick()
        .with_fabric_faults(fabric)
        .with_retry_policy(retry)
}

fn sweep_debug(cfg: &SimRunConfig, workload: &Workload) -> String {
    let topo = presets::tiny_test_machine();
    format!("{:?}", sweep_threads(&topo, workload, &NS, cfg))
}

#[test]
fn fault_injection_is_deterministic_and_default_is_inert() {
    // --- Any fabric-fault configuration — occupancy NACKs, stochastic
    // NACKs, congestion, jitter, and combinations — yields bit-identical
    // sweeps at jobs 1, 4 and 8.
    let configs = [
        FabricFaultConfig::light(),
        FabricFaultConfig::moderate(),
        FabricFaultConfig::severe(),
        // An asymmetric hand-built config hitting every knob at once.
        FabricFaultConfig {
            nack_per_mille: 175,
            max_pending_per_bank: 3,
            congestion_interval_cycles: 7_000,
            congestion_len_cycles: 1_900,
            congestion_multiplier: 5,
            jitter_cycles: 11,
        },
    ];
    let retries = [
        RetryPolicy::backoff(),
        RetryPolicy::eager(),
        RetryPolicy::patient(),
    ];
    let hc = Workload::HighContention {
        prim: Primitive::Faa,
    };
    for (fabric, retry) in configs.into_iter().zip(retries.into_iter().cycle()) {
        let cfg = faulted_cfg(fabric, retry);
        set_jobs(1);
        let serial = sweep_debug(&cfg, &hc);
        for jobs in [4, 8] {
            set_jobs(jobs);
            assert_eq!(
                serial,
                sweep_debug(&cfg, &hc),
                "fabric={fabric:?} retry={retry:?} diverged at jobs={jobs}"
            );
        }
    }

    // --- `FabricFaultConfig::default()` injects nothing: with the
    // fault code compiled in but disabled, a sweep is byte-identical to
    // one that never mentions the fabric config at all — including the
    // serialized sweep JSON downstream tooling consumes.
    let topo = presets::tiny_test_machine();
    let baseline_cfg = SimRunConfig::for_machine(&topo).quick();
    let disabled_cfg = faulted_cfg(FabricFaultConfig::default(), RetryPolicy::default());
    let w = Workload::CasRetryLoop {
        window: 30,
        work: 0,
    };
    set_jobs(4);
    let baseline = sweep_threads(&topo, &w, &NS, &baseline_cfg);
    let disabled = sweep_threads(&topo, &w, &NS, &disabled_cfg);
    assert_eq!(
        format!("{baseline:?}"),
        format!("{disabled:?}"),
        "default fabric config must not perturb the fault-free path"
    );
    assert_eq!(
        measurements_json("cas30", &baseline),
        measurements_json("cas30", &disabled),
        "sweep JSON must match byte for byte"
    );
    set_jobs(0);
}
