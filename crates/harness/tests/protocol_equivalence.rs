//! Property test for the coherence-protocol layer: on workloads with no
//! read-sharing — every access is an RMW, so no line ever ends up in
//! Shared/Forward/Owned at a second cache — the protocols are
//! indistinguishable, and the engine must produce **bit-identical**
//! `Measurement`s under MESIF, MESI and MOESI.
//!
//! The protocols only diverge on read paths: MESIF's Forward copy, plain
//! MESI's memory fallback, and MOESI's Owned supplier all answer *GetS*
//! requests. A pure GetM stream exercises none of them, so any
//! difference here is a bug in the protocol extraction, not a modelling
//! choice. Exact f64-bit equality on purpose, mirroring
//! `determinism.rs`: the contract is "nothing changes", not "roughly
//! the same".

use bounce_atomics::Primitive;
use bounce_harness::{sim_measure, Measurement, SimRunConfig};
use bounce_sim::CoherenceKind;
use bounce_topo::{presets, MachineTopology};
use bounce_workloads::Workload;
use proptest::prelude::*;

fn assert_bit_identical(a: &Measurement, b: &Measurement, what: &str) -> Result<(), TestCaseError> {
    let bits = f64::to_bits;
    prop_assert_eq!(
        bits(a.throughput_ops_per_sec),
        bits(b.throughput_ops_per_sec),
        "{}: throughput {} vs {}",
        what,
        a.throughput_ops_per_sec,
        b.throughput_ops_per_sec
    );
    prop_assert_eq!(
        bits(a.goodput_ops_per_sec),
        bits(b.goodput_ops_per_sec),
        "{}: goodput",
        what
    );
    prop_assert_eq!(
        bits(a.failure_rate),
        bits(b.failure_rate),
        "{}: failure_rate",
        what
    );
    prop_assert_eq!(
        bits(a.mean_latency_cycles),
        bits(b.mean_latency_cycles),
        "{}: mean latency",
        what
    );
    prop_assert_eq!(
        bits(a.p99_latency_cycles),
        bits(b.p99_latency_cycles),
        "{}: p99",
        what
    );
    prop_assert_eq!(bits(a.jain), bits(b.jain), "{}: jain", what);
    prop_assert_eq!(
        a.energy_per_op_nj.map(bits),
        b.energy_per_op_nj.map(bits),
        "{}: energy",
        what
    );
    prop_assert_eq!(
        &a.transfers_by_domain,
        &b.transfers_by_domain,
        "{}: transfers",
        what
    );
    prop_assert_eq!(
        &a.per_thread_ops,
        &b.per_thread_ops,
        "{}: per-thread ops",
        what
    );
    Ok(())
}

/// A random RMW primitive (never `Load` — reads are exactly what the
/// protocols disagree about).
fn rmw() -> impl Strategy<Value = Primitive> {
    (0usize..Primitive::RMW.len()).prop_map(|i| Primitive::RMW[i])
}

/// A random workload in which no thread ever issues a plain load of a
/// line another thread touches.
fn write_only_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        rmw().prop_map(|prim| Workload::HighContention { prim }),
        (rmw(), 0u64..64).prop_map(|(prim, work)| Workload::Diluted { prim, work }),
        (rmw(), 0u64..64).prop_map(|(prim, work)| Workload::LowContention { prim, work }),
        rmw().prop_map(|prim| Workload::FalseSharing { prim }),
        (rmw(), 1usize..4).prop_map(|(prim, lines)| Workload::MultiLine { prim, lines }),
    ]
}

fn topo_for(dual: bool) -> MachineTopology {
    if dual {
        presets::dual_socket_small()
    } else {
        presets::tiny_test_machine()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn protocols_agree_without_read_sharing(
        w in write_only_workload(),
        n in 1usize..8,
        dual in any::<bool>(),
    ) {
        let topo = topo_for(dual);
        let run = |kind: CoherenceKind| {
            let mut cfg = SimRunConfig::for_machine(&topo).quick().with_protocol(kind);
            cfg.duration_cycles = 60_000;
            sim_measure(&topo, &w, n, &cfg)
        };
        let mesif = run(CoherenceKind::Mesif);
        let mesi = run(CoherenceKind::Mesi);
        let moesi = run(CoherenceKind::Moesi);
        let label = w.label();
        assert_bit_identical(&mesif, &mesi, &format!("{label} n={n} mesi"))?;
        assert_bit_identical(&mesif, &moesi, &format!("{label} n={n} moesi"))?;
    }
}
