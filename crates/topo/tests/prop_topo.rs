//! Property tests on topology invariants: placements are permutations,
//! distances are symmetric, domains are consistent with structure.

use bounce_topo::{presets, Domain, HwThreadId, MachineTopology, Placement};
use proptest::prelude::*;

fn machines() -> Vec<MachineTopology> {
    vec![
        presets::tiny_test_machine(),
        presets::dual_socket_small(),
        presets::xeon_e5_2695_v4(),
        presets::xeon_phi_7290(),
    ]
}

fn machine_strategy() -> impl Strategy<Value = MachineTopology> {
    (0usize..4).prop_map(|i| machines().swap_remove(i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every placement's assignment of any n is a prefix of a
    /// permutation of all hardware threads.
    #[test]
    fn placements_are_permutation_prefixes(topo in machine_strategy(), frac in 0.0f64..=1.0) {
        let n = ((topo.num_threads() as f64 * frac) as usize).clamp(0, topo.num_threads());
        for p in Placement::ALL {
            let assigned = p.assign(&topo, n);
            prop_assert_eq!(assigned.len(), n);
            let set: std::collections::HashSet<_> = assigned.iter().collect();
            prop_assert_eq!(set.len(), n, "{} duplicated threads", p.label());
            for t in &assigned {
                prop_assert!(t.0 < topo.num_threads());
            }
        }
    }

    /// comm_domain is symmetric and SameThread only on the diagonal.
    #[test]
    fn comm_domain_symmetric(topo in machine_strategy(), a_frac in 0.0f64..1.0, b_frac in 0.0f64..1.0) {
        let n = topo.num_threads();
        let a = HwThreadId(((a_frac * n as f64) as usize).min(n - 1));
        let b = HwThreadId(((b_frac * n as f64) as usize).min(n - 1));
        let dab = topo.comm_domain(a, b);
        let dba = topo.comm_domain(b, a);
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(dab == Domain::SameThread, a == b);
    }

    /// Hop counts and wire latencies are symmetric and zero on the
    /// same tile.
    #[test]
    fn distances_symmetric(topo in machine_strategy(), a_frac in 0.0f64..1.0, b_frac in 0.0f64..1.0) {
        let n = topo.num_threads();
        let a = HwThreadId(((a_frac * n as f64) as usize).min(n - 1));
        let b = HwThreadId(((b_frac * n as f64) as usize).min(n - 1));
        prop_assert_eq!(topo.hop_count(a, b), topo.hop_count(b, a));
        prop_assert_eq!(topo.wire_cycles(a, b), topo.wire_cycles(b, a));
        if topo.tile_of(a).id == topo.tile_of(b).id {
            prop_assert_eq!(topo.hop_count(a, b), 0);
            prop_assert_eq!(topo.wire_cycles(a, b), 0);
        }
    }

    /// The domain ladder is consistent with structure: SMT siblings are
    /// on the same core, same-tile pairs on the same tile, and so on.
    #[test]
    fn domains_consistent_with_structure(topo in machine_strategy(), a_frac in 0.0f64..1.0, b_frac in 0.0f64..1.0) {
        let n = topo.num_threads();
        let a = HwThreadId(((a_frac * n as f64) as usize).min(n - 1));
        let b = HwThreadId(((b_frac * n as f64) as usize).min(n - 1));
        match topo.comm_domain(a, b) {
            Domain::SameThread => prop_assert_eq!(a, b),
            Domain::SmtSibling => {
                prop_assert_eq!(topo.core_of(a).id, topo.core_of(b).id);
                prop_assert_ne!(a, b);
            }
            Domain::SameTile => {
                prop_assert_eq!(topo.tile_of(a).id, topo.tile_of(b).id);
                prop_assert_ne!(topo.core_of(a).id, topo.core_of(b).id);
            }
            Domain::SameSocket => {
                prop_assert_eq!(topo.socket_of(a), topo.socket_of(b));
                prop_assert_ne!(topo.tile_of(a).id, topo.tile_of(b).id);
            }
            Domain::CrossSocket => {
                prop_assert_ne!(topo.socket_of(a), topo.socket_of(b));
            }
        }
    }

    /// Cycle/second conversions invert each other.
    #[test]
    fn time_conversion_roundtrip(topo in machine_strategy(), cycles in 1.0f64..1e12) {
        let s = topo.cycles_to_secs(cycles);
        let back = topo.secs_to_cycles(s);
        prop_assert!((back - cycles).abs() / cycles < 1e-9);
    }
}
