//! Communication-distance classification between hardware threads.
//!
//! The cache-line-bouncing model distinguishes *where* the current owner of
//! a contended line sits relative to the next requester, because the cost
//! of the exclusive-ownership transfer is set by the coherence path:
//! SMT siblings share an L1 (cheapest), cores on a tile share an L2,
//! cores on a socket go through the LLC/directory, and cross-socket
//! transfers traverse QPI.

use crate::machine::{HwThreadId, Interconnect, MachineTopology};
use serde::{Deserialize, Serialize};

/// The coherence domain that a line transfer between two hardware threads
/// crosses. Ordered from cheapest to most expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Same hardware thread — no transfer at all (line stays in L1).
    SameThread,
    /// Different SMT contexts on the same physical core (shared L1).
    SmtSibling,
    /// Different cores on the same tile (shared L2).
    SameTile,
    /// Different tiles on the same socket (via LLC / distributed directory).
    SameSocket,
    /// Different sockets (via QPI / package-to-package link).
    CrossSocket,
}

impl Domain {
    /// All domains, cheapest first.
    pub const ALL: [Domain; 5] = [
        Domain::SameThread,
        Domain::SmtSibling,
        Domain::SameTile,
        Domain::SameSocket,
        Domain::CrossSocket,
    ];

    /// Position of this domain in [`Domain::ALL`], in O(1).
    ///
    /// `ALL` lists the variants in declaration order, so the discriminant
    /// *is* the index (checked by a unit test). Hot paths use this
    /// instead of scanning `ALL` per transfer.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::SameThread => "self",
            Domain::SmtSibling => "smt",
            Domain::SameTile => "tile",
            Domain::SameSocket => "socket",
            Domain::CrossSocket => "cross",
        }
    }
}

impl MachineTopology {
    /// Classify the communication domain between two hardware threads.
    pub fn comm_domain(&self, a: HwThreadId, b: HwThreadId) -> Domain {
        if a == b {
            return Domain::SameThread;
        }
        let ca = self.core_of(a);
        let cb = self.core_of(b);
        if ca.id == cb.id {
            return Domain::SmtSibling;
        }
        if ca.tile == cb.tile {
            return Domain::SameTile;
        }
        if ca.socket == cb.socket {
            return Domain::SameSocket;
        }
        Domain::CrossSocket
    }

    /// Interconnect hop count between the tiles hosting two hardware
    /// threads. For a mesh this is the XY (Manhattan) distance; for a ring
    /// it is the shorter arc between ring stops (plus the cross link when
    /// the sockets differ, counted as one hop); uniform interconnects
    /// report 0 or 1.
    pub fn hop_count(&self, a: HwThreadId, b: HwThreadId) -> u32 {
        let ta = self.tile_of(a);
        let tb = self.tile_of(b);
        if ta.id == tb.id {
            return 0;
        }
        match &self.interconnect {
            Interconnect::Mesh { .. } => match (ta.mesh_pos, tb.mesh_pos) {
                (Some(pa), Some(pb)) => pa.hops_to(&pb),
                // Missing positions are a validation error; fall back to a
                // single hop rather than panicking in release paths.
                _ => 1,
            },
            Interconnect::Ring {
                stops_per_socket, ..
            } => {
                let n = *stops_per_socket as i32;
                let sa = ta.ring_stop.unwrap_or(0) as i32;
                let sb = tb.ring_stop.unwrap_or(0) as i32;
                if ta.socket == tb.socket {
                    let d = (sa - sb).abs();
                    d.min(n - d).max(1) as u32
                } else {
                    // Reach own socket edge, cross the link (1 hop), reach
                    // the destination stop on the far socket.
                    let half = (n / 2).max(1);
                    (sa.min(n - sa).min(half) + 1 + sb.min(n - sb).min(half)) as u32
                }
            }
            Interconnect::Uniform { .. } => 1,
        }
    }

    /// Raw interconnect traversal latency between two threads' tiles, in
    /// cycles (hop latency × hop count, plus cross-socket link cost for
    /// rings). This is the *wire* component only; protocol costs are added
    /// by the simulator / model.
    pub fn wire_cycles(&self, a: HwThreadId, b: HwThreadId) -> u32 {
        let hops = self.hop_count(a, b);
        match &self.interconnect {
            Interconnect::Mesh { hop_cycles, .. } => hops * hop_cycles,
            Interconnect::Ring {
                hop_cycles,
                cross_link_cycles,
                ..
            } => {
                let mut c = hops * hop_cycles;
                if self.socket_of(a) != self.socket_of(b) {
                    c += cross_link_cycles;
                }
                c
            }
            Interconnect::Uniform { latency_cycles } => hops * latency_cycles,
        }
    }

    /// Average hop count from a thread's tile to every tile (used to place
    /// "home" directory slices and to compute mean mesh distances).
    pub fn mean_hops_from(&self, a: HwThreadId) -> f64 {
        let ta = self.tile_of(a).id;
        let mut total = 0u64;
        for tl in &self.tiles {
            if tl.id == ta {
                continue;
            }
            // Pick the first thread on the tile as a representative.
            let core = &self.cores[tl.cores[0].0];
            total += self.hop_count(a, core.threads[0]) as u64;
        }
        if self.tiles.len() <= 1 {
            0.0
        } else {
            total as f64 / (self.tiles.len() - 1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{CacheLevel, CacheSharing, Interconnect, MachineTopology, MeshPos};

    #[test]
    fn domain_index_matches_all_order() {
        for (i, d) in Domain::ALL.into_iter().enumerate() {
            assert_eq!(d.index(), i, "{d:?}");
        }
    }

    fn cache() -> Vec<CacheLevel> {
        vec![CacheLevel {
            name: "L1d".into(),
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerCore,
            hit_cycles: 4,
        }]
    }

    fn two_socket() -> MachineTopology {
        // 2 sockets x 2 tiles x 2 cores x 2 smt
        let mut m = MachineTopology::homogeneous(
            "t",
            2,
            2,
            2,
            2,
            cache(),
            Interconnect::Ring {
                hop_cycles: 5,
                stops_per_socket: 2,
                cross_link_cycles: 100,
            },
            2.0,
        );
        for (i, t) in m.tiles.iter_mut().enumerate() {
            t.ring_stop = Some((i % 2) as u16);
        }
        m.validate().unwrap();
        m
    }

    #[test]
    fn domain_ladder() {
        let m = two_socket();
        let t = |i| HwThreadId(i);
        assert_eq!(m.comm_domain(t(0), t(0)), Domain::SameThread);
        assert_eq!(m.comm_domain(t(0), t(1)), Domain::SmtSibling);
        assert_eq!(m.comm_domain(t(0), t(2)), Domain::SameTile);
        assert_eq!(m.comm_domain(t(0), t(4)), Domain::SameSocket);
        assert_eq!(m.comm_domain(t(0), t(8)), Domain::CrossSocket);
    }

    #[test]
    fn domain_is_symmetric() {
        let m = two_socket();
        for a in 0..m.num_threads() {
            for b in 0..m.num_threads() {
                assert_eq!(
                    m.comm_domain(HwThreadId(a), HwThreadId(b)),
                    m.comm_domain(HwThreadId(b), HwThreadId(a))
                );
            }
        }
    }

    #[test]
    fn domain_ordering_matches_cost_intuition() {
        assert!(Domain::SameThread < Domain::SmtSibling);
        assert!(Domain::SmtSibling < Domain::SameTile);
        assert!(Domain::SameTile < Domain::SameSocket);
        assert!(Domain::SameSocket < Domain::CrossSocket);
    }

    #[test]
    fn ring_wire_cost_cross_socket_includes_link() {
        let m = two_socket();
        let same = m.wire_cycles(HwThreadId(0), HwThreadId(4));
        let cross = m.wire_cycles(HwThreadId(0), HwThreadId(8));
        assert!(cross > same + 50, "cross={cross} same={same}");
    }

    #[test]
    fn mesh_hops_and_wire() {
        let mut m = MachineTopology::homogeneous(
            "mesh",
            1,
            4,
            1,
            1,
            cache(),
            Interconnect::Mesh {
                cols: 2,
                rows: 2,
                hop_cycles: 3,
            },
            1.0,
        );
        let pos = [(0, 0), (1, 0), (0, 1), (1, 1)];
        for (t, (c, r)) in m.tiles.iter_mut().zip(pos) {
            t.mesh_pos = Some(MeshPos { col: c, row: r });
        }
        m.validate().unwrap();
        assert_eq!(m.hop_count(HwThreadId(0), HwThreadId(3)), 2);
        assert_eq!(m.wire_cycles(HwThreadId(0), HwThreadId(3)), 6);
        assert_eq!(m.hop_count(HwThreadId(0), HwThreadId(0)), 0);
    }

    #[test]
    fn mean_hops_reasonable() {
        let m = two_socket();
        let mh = m.mean_hops_from(HwThreadId(0));
        assert!(mh > 0.0 && mh < 10.0, "mh={mh}");
    }
}
