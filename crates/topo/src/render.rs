//! Human-readable topology rendering: a compact ASCII picture of
//! sockets, tiles, cores and the interconnect, for docs, debugging and
//! the `repro topo` subcommand.

use crate::machine::{Interconnect, MachineTopology};
use std::fmt::Write as _;

impl MachineTopology {
    /// A multi-line ASCII description of the machine.
    ///
    /// Ring machines render one line per socket with its ring stops;
    /// mesh machines render the 2D grid of tiles; every variant ends
    /// with the cache hierarchy summary.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.name);
        let _ = writeln!(
            out,
            "{} socket(s) x {} tile(s) x {} core(s) x {}-way SMT = {} hw threads @ {} GHz",
            self.num_sockets(),
            self.num_tiles() / self.num_sockets().max(1),
            self.cores.len() / self.num_tiles().max(1),
            self.smt_ways(),
            self.num_threads(),
            self.freq_ghz
        );
        match &self.interconnect {
            Interconnect::Mesh {
                cols,
                rows,
                hop_cycles,
            } => {
                let _ = writeln!(out, "interconnect: {cols}x{rows} mesh, {hop_cycles} cy/hop");
                for r in 0..*rows {
                    let mut line = String::from("  ");
                    for c in 0..*cols {
                        let tile = self.tiles.iter().find(|t| {
                            t.mesh_pos
                                .map(|p| p.col == c && p.row == r)
                                .unwrap_or(false)
                        });
                        match tile {
                            Some(t) => {
                                let _ = write!(line, "[T{:02}]", t.id.0);
                            }
                            None => line.push_str("[ - ]"),
                        }
                        if c + 1 < *cols {
                            line.push('-');
                        }
                    }
                    let _ = writeln!(out, "{line}");
                    if r + 1 < *rows {
                        let mut bars = String::from("  ");
                        for c in 0..*cols {
                            bars.push_str("  |  ");
                            if c + 1 < *cols {
                                bars.push(' ');
                            }
                        }
                        let _ = writeln!(out, "{bars}");
                    }
                }
            }
            Interconnect::Ring {
                hop_cycles,
                stops_per_socket,
                cross_link_cycles,
            } => {
                let _ = writeln!(
                    out,
                    "interconnect: ring ({stops_per_socket} stops/socket, {hop_cycles} cy/hop) + cross link ({cross_link_cycles} cy)"
                );
                for s in &self.sockets {
                    let mut line = format!("  socket {}: (", s.id.0);
                    let mut stops: Vec<_> = s
                        .tiles
                        .iter()
                        .map(|&t| (self.tiles[t.0].ring_stop.unwrap_or(0), t))
                        .collect();
                    stops.sort_unstable();
                    for (i, (_, t)) in stops.iter().enumerate() {
                        if i > 0 {
                            line.push('-');
                        }
                        let _ = write!(line, "T{:02}", t.0);
                    }
                    line.push_str(")⟲");
                    let _ = writeln!(out, "{line}");
                }
            }
            Interconnect::Uniform { latency_cycles } => {
                let _ = writeln!(
                    out,
                    "interconnect: uniform, {latency_cycles} cy point-to-point"
                );
            }
        }
        for c in &self.caches {
            let _ = writeln!(
                out,
                "  {}: {} KiB, {}-way, {} B lines, {} cy hit, {:?}",
                c.name,
                c.size_bytes / 1024,
                c.assoc,
                c.line_bytes,
                c.hit_cycles,
                c.sharing
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn mesh_render_contains_grid() {
        let s = presets::xeon_phi_7290().render_ascii();
        assert!(s.contains("6x6 mesh"));
        assert!(s.contains("[T00]"));
        assert!(s.contains("[T35]"));
        assert!(s.contains("288 hw threads"));
        // Six grid rows.
        assert_eq!(s.matches("[T").count(), 36);
    }

    #[test]
    fn ring_render_lists_sockets() {
        let s = presets::xeon_e5_2695_v4().render_ascii();
        assert!(s.contains("socket 0"));
        assert!(s.contains("socket 1"));
        assert!(s.contains("cross link"));
        assert!(s.contains("L3"));
    }

    #[test]
    fn uniform_render() {
        let s = crate::host::flat_fallback(2).render_ascii();
        assert!(s.contains("uniform"));
    }
}
