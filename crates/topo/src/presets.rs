//! Topology presets for the paper's two testbeds plus auxiliary machines.
//!
//! Numbers (cache sizes, frequencies, hop latencies) follow the published
//! specifications of the parts and the usual microarchitectural estimates;
//! the simulator's *protocol* latencies are configured separately in
//! `bounce-sim` and the analytic model fits its own per-domain transfer
//! costs, so the presets only need to get the *structure* right.

use crate::machine::{CacheLevel, CacheSharing, Interconnect, MachineTopology, MeshPos};
use crate::protocol::CoherenceKind;

/// Intel Xeon E5-2695 v4 ("Broadwell-EP"), the paper's big-core testbed:
/// 2 sockets × 18 cores × 2-way SMT = 72 hardware threads; per-core
/// L1d/L2; inclusive shared L3 of 45 MiB per socket with an in-LLC
/// snoop/home directory; bidirectional ring on package; QPI between
/// packages; 2.1 GHz nominal.
pub fn xeon_e5_2695_v4() -> MachineTopology {
    let caches = vec![
        CacheLevel {
            name: "L1d".into(),
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerCore,
            hit_cycles: 4,
        },
        CacheLevel {
            name: "L2".into(),
            size_bytes: 256 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerCore,
            hit_cycles: 12,
        },
        CacheLevel {
            name: "L3".into(),
            size_bytes: 45 * 1024 * 1024,
            line_bytes: 64,
            assoc: 20,
            sharing: CacheSharing::PerSocket,
            hit_cycles: 40,
        },
    ];
    // One "tile" per core (no shared mid-level cache on Broadwell); each
    // core is one ring stop.
    let mut m = MachineTopology::homogeneous(
        "Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)",
        2,
        18,
        1,
        2,
        caches,
        Interconnect::Ring {
            hop_cycles: 2,
            stops_per_socket: 18,
            cross_link_cycles: 120,
        },
        2.1,
    );
    for tile in m.tiles.iter_mut() {
        // Tiles are created socket-major; stop index is the tile's index
        // within its socket.
        let within = tile.id.0 % 18;
        tile.ring_stop = Some(within as u16);
    }
    // Intel server parts source clean shared lines from a Forward copy.
    m.protocol = CoherenceKind::Mesif;
    debug_assert!(m.validate().is_ok());
    m
}

/// Intel Xeon Phi 7290 ("Knights Landing"), the paper's many-core testbed:
/// 72 cores = 36 active tiles × 2 cores, 4-way SMT = 288 hardware threads;
/// per-core L1d, 1 MiB L2 shared by the two cores of a tile; no shared
/// LLC — coherence through a distributed tag directory, one slice per
/// tile; 2D mesh (modelled as 6×6 over the active tiles); 1.5 GHz.
pub fn xeon_phi_7290() -> MachineTopology {
    let caches = vec![
        CacheLevel {
            name: "L1d".into(),
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerCore,
            hit_cycles: 5,
        },
        CacheLevel {
            name: "L2".into(),
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            assoc: 16,
            sharing: CacheSharing::PerTile,
            hit_cycles: 17,
        },
    ];
    let mut m = MachineTopology::homogeneous(
        "Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)",
        1,
        36,
        2,
        4,
        caches,
        Interconnect::Mesh {
            cols: 6,
            rows: 6,
            hop_cycles: 3,
        },
        1.5,
    );
    for (i, tile) in m.tiles.iter_mut().enumerate() {
        tile.mesh_pos = Some(MeshPos {
            col: (i % 6) as u16,
            row: (i / 6) as u16,
        });
    }
    // KNL's distributed tag directory speaks plain MESI (no Forward
    // state): clean shared reads are serviced by the home tile / MCDRAM.
    m.protocol = CoherenceKind::Mesi;
    debug_assert!(m.validate().is_ok());
    m
}

/// A deliberately tiny machine (1 socket × 2 tiles × 2 cores × 2 SMT = 8
/// hardware threads) for fast unit tests and examples.
pub fn tiny_test_machine() -> MachineTopology {
    let caches = vec![
        CacheLevel {
            name: "L1d".into(),
            size_bytes: 16 * 1024,
            line_bytes: 64,
            assoc: 4,
            sharing: CacheSharing::PerCore,
            hit_cycles: 4,
        },
        CacheLevel {
            name: "L2".into(),
            size_bytes: 128 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerTile,
            hit_cycles: 12,
        },
        CacheLevel {
            name: "L3".into(),
            size_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            assoc: 16,
            sharing: CacheSharing::PerSocket,
            hit_cycles: 30,
        },
    ];
    let mut m = MachineTopology::homogeneous(
        "tiny-test (1S x 2Tile x 2C x 2T)",
        1,
        2,
        2,
        2,
        caches,
        Interconnect::Ring {
            hop_cycles: 3,
            stops_per_socket: 2,
            cross_link_cycles: 80,
        },
        2.0,
    );
    for (i, tile) in m.tiles.iter_mut().enumerate() {
        tile.ring_stop = Some(i as u16);
    }
    debug_assert!(m.validate().is_ok());
    m
}

/// A two-socket medium machine (2 × 8 cores × 2 SMT = 32 threads) used by
/// examples that want cross-socket effects without E5-scale sweep times.
pub fn dual_socket_small() -> MachineTopology {
    let caches = vec![
        CacheLevel {
            name: "L1d".into(),
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerCore,
            hit_cycles: 4,
        },
        CacheLevel {
            name: "L2".into(),
            size_bytes: 256 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerCore,
            hit_cycles: 12,
        },
        CacheLevel {
            name: "L3".into(),
            size_bytes: 16 * 1024 * 1024,
            line_bytes: 64,
            assoc: 16,
            sharing: CacheSharing::PerSocket,
            hit_cycles: 38,
        },
    ];
    let mut m = MachineTopology::homogeneous(
        "dual-socket-small (2S x 8C x 2T)",
        2,
        8,
        1,
        2,
        caches,
        Interconnect::Ring {
            hop_cycles: 2,
            stops_per_socket: 8,
            cross_link_cycles: 110,
        },
        2.4,
    );
    for tile in m.tiles.iter_mut() {
        tile.ring_stop = Some((tile.id.0 % 8) as u16);
    }
    debug_assert!(m.validate().is_ok());
    m
}

/// Look up a preset by name (used by the `repro` CLI).
pub fn by_name(name: &str) -> Option<MachineTopology> {
    match name {
        "e5" | "xeon-e5" | "xeon_e5_2695_v4" => Some(xeon_e5_2695_v4()),
        "knl" | "xeon-phi" | "xeon_phi_7290" => Some(xeon_phi_7290()),
        "tiny" | "tiny_test_machine" => Some(tiny_test_machine()),
        "dual" | "dual_socket_small" => Some(dual_socket_small()),
        _ => None,
    }
}

/// Names accepted by [`by_name`], canonical first.
pub const PRESET_NAMES: [&str; 4] = ["e5", "knl", "tiny", "dual"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Domain;
    use crate::machine::HwThreadId;

    #[test]
    fn e5_shape() {
        let m = xeon_e5_2695_v4();
        m.validate().unwrap();
        assert_eq!(m.num_sockets(), 2);
        assert_eq!(m.num_cores(), 36);
        assert_eq!(m.num_threads(), 72);
        assert_eq!(m.smt_ways(), 2);
        assert_eq!(m.line_bytes(), 64);
    }

    #[test]
    fn knl_shape() {
        let m = xeon_phi_7290();
        m.validate().unwrap();
        assert_eq!(m.num_sockets(), 1);
        assert_eq!(m.num_tiles(), 36);
        assert_eq!(m.num_cores(), 72);
        assert_eq!(m.num_threads(), 288);
        assert_eq!(m.smt_ways(), 4);
    }

    #[test]
    fn e5_cross_socket_domain() {
        let m = xeon_e5_2695_v4();
        // Threads are socket-major: first 36 threads on socket 0.
        assert_eq!(
            m.comm_domain(HwThreadId(0), HwThreadId(36)),
            Domain::CrossSocket
        );
        assert_eq!(
            m.comm_domain(HwThreadId(0), HwThreadId(2)),
            Domain::SameSocket
        );
        assert_eq!(
            m.comm_domain(HwThreadId(0), HwThreadId(1)),
            Domain::SmtSibling
        );
    }

    #[test]
    fn knl_tile_sharing() {
        let m = xeon_phi_7290();
        // Threads 0..4 = core 0 (4 SMT); 4..8 = core 1, same tile.
        assert_eq!(
            m.comm_domain(HwThreadId(0), HwThreadId(4)),
            Domain::SameTile
        );
        assert_eq!(
            m.comm_domain(HwThreadId(0), HwThreadId(8)),
            Domain::SameSocket
        );
    }

    #[test]
    fn knl_mesh_distances_vary() {
        let m = xeon_phi_7290();
        // Tile 0 at (0,0), tile 35 at (5,5): 10 hops.
        let corner = HwThreadId(35 * 8); // first thread of tile 35
        assert_eq!(m.hop_count(HwThreadId(0), corner), 10);
    }

    #[test]
    fn presets_by_name() {
        for n in PRESET_NAMES {
            assert!(by_name(n).is_some(), "{n}");
        }
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn presets_name_native_protocols() {
        assert_eq!(xeon_e5_2695_v4().protocol, CoherenceKind::Mesif);
        assert_eq!(xeon_phi_7290().protocol, CoherenceKind::Mesi);
        assert_eq!(tiny_test_machine().protocol, CoherenceKind::Mesif);
        assert_eq!(dual_socket_small().protocol, CoherenceKind::Mesif);
    }

    #[test]
    fn all_presets_validate() {
        for n in PRESET_NAMES {
            by_name(n).unwrap().validate().unwrap();
        }
    }
}
