//! Core topology data model: hardware threads, cores, tiles, sockets,
//! caches and the interconnect geometry.

use serde::{Deserialize, Serialize};

use crate::protocol::CoherenceKind;

/// Index of a hardware thread (SMT context), global across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HwThreadId(pub usize);

/// Index of a physical core, global across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Index of a tile (a group of cores sharing a mid-level cache), global.
///
/// On machines without a tile concept (e.g. Xeon E5) every core is its own
/// tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TileId(pub usize);

/// Index of a socket (NUMA package), global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub usize);

/// Position of a tile on a 2D mesh interconnect, in (column, row) units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshPos {
    /// Column (x) coordinate.
    pub col: u16,
    /// Row (y) coordinate.
    pub row: u16,
}

impl MeshPos {
    /// Manhattan distance to another mesh position — the hop count of a
    /// dimension-ordered (XY) routed message.
    pub fn hops_to(&self, other: &MeshPos) -> u32 {
        let dc = (self.col as i32 - other.col as i32).unsigned_abs();
        let dr = (self.row as i32 - other.row as i32).unsigned_abs();
        dc + dr
    }
}

/// A hardware thread (SMT context).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HwThread {
    /// Global id of this hardware thread.
    pub id: HwThreadId,
    /// The physical core hosting this thread.
    pub core: CoreId,
    /// Which SMT slot on the core this thread occupies (0-based).
    pub smt_index: u8,
}

/// A physical core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Core {
    /// Global id of this core.
    pub id: CoreId,
    /// The tile this core belongs to.
    pub tile: TileId,
    /// The socket this core belongs to.
    pub socket: SocketId,
    /// Hardware threads hosted on this core, in SMT-slot order.
    pub threads: Vec<HwThreadId>,
}

/// A tile: a set of cores sharing a mid-level (usually L2) cache and one
/// interconnect stop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tile {
    /// Global id of this tile.
    pub id: TileId,
    /// The socket this tile belongs to.
    pub socket: SocketId,
    /// Cores on this tile.
    pub cores: Vec<CoreId>,
    /// Position on a 2D mesh, if the interconnect is a mesh.
    pub mesh_pos: Option<MeshPos>,
    /// Position on a ring (stop index), if the interconnect is a ring.
    pub ring_stop: Option<u16>,
}

/// A socket / package.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Socket {
    /// Global id of this socket.
    pub id: SocketId,
    /// Tiles on this socket.
    pub tiles: Vec<TileId>,
}

/// Which set of hardware threads share one instance of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheSharing {
    /// One instance per core (shared only by SMT siblings).
    PerCore,
    /// One instance per tile.
    PerTile,
    /// One instance per socket (e.g. an inclusive shared LLC).
    PerSocket,
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Human-readable name, e.g. `"L1d"`.
    pub name: String,
    /// Capacity of one instance in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes (64 on both paper machines).
    pub line_bytes: usize,
    /// Associativity (ways).
    pub assoc: usize,
    /// Sharing domain of one instance.
    pub sharing: CacheSharing,
    /// Load-to-use hit latency in cycles.
    pub hit_cycles: u32,
}

impl CacheLevel {
    /// Number of sets in one instance.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

/// The on-chip / cross-chip interconnect geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Interconnect {
    /// A (bidirectional) ring per socket with a point-to-point link between
    /// sockets, as on Xeon E5 (ring + QPI).
    Ring {
        /// Latency of one ring hop, cycles.
        hop_cycles: u32,
        /// Number of ring stops per socket.
        stops_per_socket: u16,
        /// One-way latency of the cross-socket link, cycles.
        cross_link_cycles: u32,
    },
    /// A 2D mesh with XY routing, as on Knights Landing.
    Mesh {
        /// Columns of the mesh.
        cols: u16,
        /// Rows of the mesh.
        rows: u16,
        /// Latency of one mesh hop, cycles.
        hop_cycles: u32,
    },
    /// A single shared bus/crossbar with uniform latency — used for small
    /// "generic host" topologies where geometry is unknown.
    Uniform {
        /// Flat point-to-point latency, cycles.
        latency_cycles: u32,
    },
}

/// A full machine description.
///
/// Invariants (checked by [`MachineTopology::validate`]):
/// * ids are dense: `threads[i].id == HwThreadId(i)`, same for cores,
///   tiles, sockets;
/// * every containment edge is consistent in both directions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineTopology {
    /// Human-readable machine name, e.g. `"Intel Xeon E5-2695 v4"`.
    pub name: String,
    /// All hardware threads, indexed by `HwThreadId`.
    pub threads: Vec<HwThread>,
    /// All cores, indexed by `CoreId`.
    pub cores: Vec<Core>,
    /// All tiles, indexed by `TileId`.
    pub tiles: Vec<Tile>,
    /// All sockets, indexed by `SocketId`.
    pub sockets: Vec<Socket>,
    /// Cache hierarchy, ordered from closest (L1) to farthest.
    pub caches: Vec<CacheLevel>,
    /// Interconnect geometry.
    pub interconnect: Interconnect,
    /// Nominal core frequency in GHz (used to convert cycles to seconds).
    pub freq_ghz: f64,
    /// Coherence-protocol family the machine's caches natively implement.
    pub protocol: CoherenceKind,
}

impl MachineTopology {
    /// Total number of hardware threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total number of physical cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Total number of sockets.
    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// SMT ways (hardware threads per core); assumes homogeneous cores.
    pub fn smt_ways(&self) -> usize {
        self.cores.first().map_or(1, |c| c.threads.len())
    }

    /// Cache line size in bytes (from the first cache level; 64 everywhere
    /// we care about).
    pub fn line_bytes(&self) -> usize {
        self.caches.first().map_or(64, |c| c.line_bytes)
    }

    /// The core hosting hardware thread `t`.
    pub fn core_of(&self, t: HwThreadId) -> &Core {
        &self.cores[self.threads[t.0].core.0]
    }

    /// The tile hosting hardware thread `t`.
    pub fn tile_of(&self, t: HwThreadId) -> &Tile {
        &self.tiles[self.core_of(t).tile.0]
    }

    /// The socket hosting hardware thread `t`.
    pub fn socket_of(&self, t: HwThreadId) -> SocketId {
        self.core_of(t).socket
    }

    /// Convert a cycle count into seconds at the nominal frequency.
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Convert seconds into cycles at the nominal frequency.
    pub fn secs_to_cycles(&self, secs: f64) -> f64 {
        secs * self.freq_ghz * 1e9
    }

    /// Check the structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.threads.iter().enumerate() {
            if t.id.0 != i {
                return Err(format!("thread {i} has non-dense id {:?}", t.id));
            }
            let core = self
                .cores
                .get(t.core.0)
                .ok_or_else(|| format!("thread {i} references missing core {:?}", t.core))?;
            if !core.threads.contains(&t.id) {
                return Err(format!("core {:?} does not list thread {i}", core.id));
            }
            if core.threads.get(t.smt_index as usize) != Some(&t.id) {
                return Err(format!(
                    "thread {i} smt_index {} inconsistent with core {:?} order",
                    t.smt_index, core.id
                ));
            }
        }
        for (i, c) in self.cores.iter().enumerate() {
            if c.id.0 != i {
                return Err(format!("core {i} has non-dense id {:?}", c.id));
            }
            let tile = self
                .tiles
                .get(c.tile.0)
                .ok_or_else(|| format!("core {i} references missing tile {:?}", c.tile))?;
            if !tile.cores.contains(&c.id) {
                return Err(format!("tile {:?} does not list core {i}", tile.id));
            }
            if tile.socket != c.socket {
                return Err(format!(
                    "core {i} socket {:?} != its tile's socket {:?}",
                    c.socket, tile.socket
                ));
            }
            if c.threads.is_empty() {
                return Err(format!("core {i} has no hardware threads"));
            }
        }
        for (i, tl) in self.tiles.iter().enumerate() {
            if tl.id.0 != i {
                return Err(format!("tile {i} has non-dense id {:?}", tl.id));
            }
            let sock = self
                .sockets
                .get(tl.socket.0)
                .ok_or_else(|| format!("tile {i} references missing socket {:?}", tl.socket))?;
            if !sock.tiles.contains(&tl.id) {
                return Err(format!("socket {:?} does not list tile {i}", sock.id));
            }
            if tl.cores.is_empty() {
                return Err(format!("tile {i} has no cores"));
            }
        }
        for (i, s) in self.sockets.iter().enumerate() {
            if s.id.0 != i {
                return Err(format!("socket {i} has non-dense id {:?}", s.id));
            }
            if s.tiles.is_empty() {
                return Err(format!("socket {i} has no tiles"));
            }
        }
        if self.threads.is_empty() {
            return Err("machine has no hardware threads".into());
        }
        if !(self.freq_ghz.is_finite() && self.freq_ghz > 0.0) {
            return Err(format!("non-positive frequency {}", self.freq_ghz));
        }
        if let Interconnect::Mesh { cols, rows, .. } = self.interconnect {
            for tl in &self.tiles {
                match tl.mesh_pos {
                    Some(p) if p.col < cols && p.row < rows => {}
                    Some(p) => {
                        return Err(format!(
                            "tile {:?} mesh position {:?} outside {cols}x{rows} mesh",
                            tl.id, p
                        ))
                    }
                    None => return Err(format!("tile {:?} missing mesh position", tl.id)),
                }
            }
        }
        Ok(())
    }

    /// Build a homogeneous machine: `sockets × tiles_per_socket ×
    /// cores_per_tile × smt` hardware threads, ids assigned in that nesting
    /// order. Mesh/ring positions are left unset; presets fill them in.
    #[allow(clippy::too_many_arguments)] // a constructor enumerating the shape
    pub fn homogeneous(
        name: &str,
        sockets: usize,
        tiles_per_socket: usize,
        cores_per_tile: usize,
        smt: usize,
        caches: Vec<CacheLevel>,
        interconnect: Interconnect,
        freq_ghz: f64,
    ) -> Self {
        assert!(sockets > 0 && tiles_per_socket > 0 && cores_per_tile > 0 && smt > 0);
        let mut topo = MachineTopology {
            name: name.to_string(),
            threads: Vec::new(),
            cores: Vec::new(),
            tiles: Vec::new(),
            sockets: Vec::new(),
            caches,
            interconnect,
            freq_ghz,
            protocol: CoherenceKind::default(),
        };
        for s in 0..sockets {
            let sid = SocketId(s);
            let mut tile_ids = Vec::with_capacity(tiles_per_socket);
            for _ in 0..tiles_per_socket {
                let tid = TileId(topo.tiles.len());
                let mut core_ids = Vec::with_capacity(cores_per_tile);
                for _ in 0..cores_per_tile {
                    let cid = CoreId(topo.cores.len());
                    let mut thread_ids = Vec::with_capacity(smt);
                    for k in 0..smt {
                        let hid = HwThreadId(topo.threads.len());
                        topo.threads.push(HwThread {
                            id: hid,
                            core: cid,
                            smt_index: k as u8,
                        });
                        thread_ids.push(hid);
                    }
                    topo.cores.push(Core {
                        id: cid,
                        tile: tid,
                        socket: sid,
                        threads: thread_ids,
                    });
                    core_ids.push(cid);
                }
                topo.tiles.push(Tile {
                    id: tid,
                    socket: sid,
                    cores: core_ids,
                    mesh_pos: None,
                    ring_stop: None,
                });
                tile_ids.push(tid);
            }
            topo.sockets.push(Socket {
                id: sid,
                tiles: tile_ids,
            });
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheLevel {
        CacheLevel {
            name: "L1d".into(),
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            sharing: CacheSharing::PerCore,
            hit_cycles: 4,
        }
    }

    #[test]
    fn homogeneous_counts() {
        let m = MachineTopology::homogeneous(
            "t",
            2,
            3,
            2,
            2,
            vec![l1()],
            Interconnect::Uniform { latency_cycles: 40 },
            2.0,
        );
        assert_eq!(m.num_sockets(), 2);
        assert_eq!(m.num_tiles(), 6);
        assert_eq!(m.num_cores(), 12);
        assert_eq!(m.num_threads(), 24);
        assert_eq!(m.smt_ways(), 2);
        m.validate().unwrap();
    }

    #[test]
    fn containment_lookups() {
        let m = MachineTopology::homogeneous(
            "t",
            2,
            2,
            2,
            2,
            vec![l1()],
            Interconnect::Uniform { latency_cycles: 40 },
            2.0,
        );
        // Thread 0 and 1 are SMT siblings on core 0, tile 0, socket 0.
        assert_eq!(m.core_of(HwThreadId(0)).id, CoreId(0));
        assert_eq!(m.core_of(HwThreadId(1)).id, CoreId(0));
        assert_eq!(m.tile_of(HwThreadId(0)).id, TileId(0));
        assert_eq!(m.socket_of(HwThreadId(0)), SocketId(0));
        // Last thread is on the last core of the last socket.
        let last = HwThreadId(m.num_threads() - 1);
        assert_eq!(m.socket_of(last), SocketId(1));
    }

    #[test]
    fn cycle_time_conversions_roundtrip() {
        let m = MachineTopology::homogeneous(
            "t",
            1,
            1,
            1,
            1,
            vec![l1()],
            Interconnect::Uniform { latency_cycles: 1 },
            2.5,
        );
        let secs = m.cycles_to_secs(2.5e9);
        assert!((secs - 1.0).abs() < 1e-12);
        assert!((m.secs_to_cycles(secs) - 2.5e9).abs() < 1e-3);
    }

    #[test]
    fn mesh_pos_hops() {
        let a = MeshPos { col: 1, row: 2 };
        let b = MeshPos { col: 4, row: 0 };
        assert_eq!(a.hops_to(&b), 5);
        assert_eq!(b.hops_to(&a), 5);
        assert_eq!(a.hops_to(&a), 0);
    }

    #[test]
    fn validate_rejects_broken_containment() {
        let mut m = MachineTopology::homogeneous(
            "t",
            1,
            1,
            2,
            1,
            vec![l1()],
            Interconnect::Uniform { latency_cycles: 1 },
            2.0,
        );
        m.cores[0].tile = TileId(99);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_mesh_without_positions() {
        let m = MachineTopology::homogeneous(
            "t",
            1,
            2,
            1,
            1,
            vec![l1()],
            Interconnect::Mesh {
                cols: 2,
                rows: 1,
                hop_cycles: 2,
            },
            2.0,
        );
        // homogeneous() leaves mesh_pos unset.
        assert!(m.validate().is_err());
    }

    #[test]
    fn cache_sets() {
        let c = l1();
        assert_eq!(c.sets(), 32 * 1024 / (64 * 8));
    }
}
