//! Link-level route enumeration: which interconnect links a message
//! from tile A to tile B traverses.
//!
//! The transaction-level simulator charges wire *latency* from hop
//! counts; when link bandwidth is modelled, it additionally needs the
//! identity of each traversed link so that messages contend on shared
//! segments. Links are directed `(from_tile, to_tile)` pairs between
//! adjacent interconnect stops; the cross-socket link of a ring machine
//! appears as a pair of virtual endpoint tiles (the stop-0 tiles of the
//! two sockets).

use crate::machine::{Interconnect, MachineTopology, MeshPos, TileId};

/// A directed interconnect link between two adjacent tiles.
pub type Link = (TileId, TileId);

impl MachineTopology {
    /// The directed links a message traverses from `a`'s tile to `b`'s
    /// tile. Empty when the tiles coincide.
    ///
    /// * Mesh: dimension-ordered (X then Y) routing over adjacent grid
    ///   tiles.
    /// * Ring: the shorter arc within each socket, plus the cross link
    ///   (represented as stop-0 tile of socket A → stop-0 tile of
    ///   socket B) for cross-socket routes.
    /// * Uniform: one direct link.
    pub fn route_tiles(&self, a: TileId, b: TileId) -> Vec<Link> {
        if a == b {
            return Vec::new();
        }
        match &self.interconnect {
            Interconnect::Mesh { cols, rows, .. } => self.route_mesh(a, b, *cols, *rows),
            Interconnect::Ring {
                stops_per_socket, ..
            } => self.route_ring(a, b, *stops_per_socket),
            Interconnect::Uniform { .. } => vec![(a, b)],
        }
    }

    fn tile_at_mesh(&self, pos: MeshPos) -> Option<TileId> {
        self.tiles
            .iter()
            .find(|t| t.mesh_pos == Some(pos))
            .map(|t| t.id)
    }

    fn route_mesh(&self, a: TileId, b: TileId, _cols: u16, _rows: u16) -> Vec<Link> {
        let (Some(pa), Some(pb)) = (self.tiles[a.0].mesh_pos, self.tiles[b.0].mesh_pos) else {
            return vec![(a, b)];
        };
        let mut links = Vec::new();
        let mut cur = pa;
        let mut cur_tile = a;
        // X first.
        while cur.col != pb.col {
            let next = MeshPos {
                col: if pb.col > cur.col {
                    cur.col + 1
                } else {
                    cur.col - 1
                },
                row: cur.row,
            };
            let Some(next_tile) = self.tile_at_mesh(next) else {
                // Hole in the mesh (disabled tile); fall back to a
                // direct virtual link for the remainder.
                links.push((cur_tile, b));
                return links;
            };
            links.push((cur_tile, next_tile));
            cur = next;
            cur_tile = next_tile;
        }
        // Then Y.
        while cur.row != pb.row {
            let next = MeshPos {
                col: cur.col,
                row: if pb.row > cur.row {
                    cur.row + 1
                } else {
                    cur.row - 1
                },
            };
            let Some(next_tile) = self.tile_at_mesh(next) else {
                links.push((cur_tile, b));
                return links;
            };
            links.push((cur_tile, next_tile));
            cur = next;
            cur_tile = next_tile;
        }
        links
    }

    fn tile_at_ring(&self, socket: usize, stop: u16) -> Option<TileId> {
        self.sockets
            .get(socket)?
            .tiles
            .iter()
            .copied()
            .find(|&t| self.tiles[t.0].ring_stop == Some(stop))
    }

    fn route_ring(&self, a: TileId, b: TileId, stops: u16) -> Vec<Link> {
        let sa = self.tiles[a.0].socket.0;
        let sb = self.tiles[b.0].socket.0;
        let stop_a = self.tiles[a.0].ring_stop.unwrap_or(0);
        let stop_b = self.tiles[b.0].ring_stop.unwrap_or(0);
        let mut links = Vec::new();
        if sa == sb {
            self.ring_arc(sa, stop_a, stop_b, stops, &mut links);
            return links;
        }
        // To the local stop 0, across, then onward.
        self.ring_arc(sa, stop_a, 0, stops, &mut links);
        let exit = self.tile_at_ring(sa, 0).unwrap_or(a);
        let entry = self.tile_at_ring(sb, 0).unwrap_or(b);
        links.push((exit, entry)); // the cross-socket link
        self.ring_arc(sb, 0, stop_b, stops, &mut links);
        links
    }

    /// Append the links of the shorter arc from `from` to `to` on one
    /// socket's ring.
    fn ring_arc(&self, socket: usize, from: u16, to: u16, stops: u16, out: &mut Vec<Link>) {
        if from == to || stops == 0 {
            return;
        }
        let n = stops as i32;
        let fwd = ((to as i32 - from as i32).rem_euclid(n)) as u16;
        let step_fwd = fwd <= stops / 2;
        let mut cur = from;
        while cur != to {
            let next = if step_fwd {
                (cur + 1) % stops
            } else {
                (cur + stops - 1) % stops
            };
            let (Some(t1), Some(t2)) = (
                self.tile_at_ring(socket, cur),
                self.tile_at_ring(socket, next),
            ) else {
                return;
            };
            out.push((t1, t2));
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn mesh_route_length_equals_hop_count() {
        let m = presets::xeon_phi_7290();
        for (a, b) in [(0usize, 35usize), (3, 20), (7, 7), (0, 5), (0, 30)] {
            let route = m.route_tiles(TileId(a), TileId(b));
            let rep_a = m.cores[m.tiles[a].cores[0].0].threads[0];
            let rep_b = m.cores[m.tiles[b].cores[0].0].threads[0];
            assert_eq!(
                route.len() as u32,
                m.hop_count(rep_a, rep_b),
                "route {a}->{b}"
            );
        }
    }

    #[test]
    fn mesh_route_is_connected() {
        let m = presets::xeon_phi_7290();
        let route = m.route_tiles(TileId(0), TileId(35));
        assert_eq!(route.first().unwrap().0, TileId(0));
        assert_eq!(route.last().unwrap().1, TileId(35));
        for w in route.windows(2) {
            assert_eq!(w[0].1, w[1].0, "links chain");
        }
        // XY routing: all X moves before all Y moves.
        let positions: Vec<_> = route
            .iter()
            .map(|(f, t)| {
                (
                    m.tiles[f.0].mesh_pos.unwrap(),
                    m.tiles[t.0].mesh_pos.unwrap(),
                )
            })
            .collect();
        let mut seen_y = false;
        for (pf, pt) in positions {
            if pf.row != pt.row {
                seen_y = true;
            } else {
                assert!(!seen_y, "X move after Y move breaks XY routing");
            }
        }
    }

    #[test]
    fn ring_route_same_socket_short_arc() {
        let m = presets::xeon_e5_2695_v4();
        // Stops 0 -> 2 on socket 0: two links.
        let route = m.route_tiles(TileId(0), TileId(2));
        assert_eq!(route.len(), 2);
        // Stops 0 -> 17: shorter to go backwards (1 link on an 18-stop
        // ring).
        let route = m.route_tiles(TileId(0), TileId(17));
        assert_eq!(route.len(), 1);
    }

    #[test]
    fn ring_route_cross_socket_contains_cross_link() {
        let m = presets::xeon_e5_2695_v4();
        // Tile 2 (socket 0, stop 2) -> tile 21 (socket 1, stop 3).
        let route = m.route_tiles(TileId(2), TileId(21));
        // Arc to stop 0 (2 links) + cross (1) + arc to stop 3 (3 links).
        assert_eq!(route.len(), 2 + 1 + 3);
        // The cross link connects the two sockets' stop-0 tiles.
        let cross = route[2];
        assert_eq!(m.tiles[cross.0 .0].socket.0, 0);
        assert_eq!(m.tiles[cross.1 .0].socket.0, 1);
    }

    #[test]
    fn same_tile_route_empty() {
        let m = presets::tiny_test_machine();
        assert!(m.route_tiles(TileId(1), TileId(1)).is_empty());
    }

    #[test]
    fn uniform_route_single_link() {
        let m = crate::host::flat_fallback(4);
        let r = m.route_tiles(TileId(0), TileId(0));
        assert!(r.is_empty());
    }
}
