//! The coherence-protocol family a machine's caches implement.
//!
//! The simulator prices every atomic by the cost of bouncing a cache line
//! under a concrete invalidation protocol. Real machines differ: Intel
//! parts speak MESIF (a clean Forward copy answers read misses
//! cache-to-cache), AMD parts speak MOESI (a dirty Owned copy is shared
//! without writing it back), and simpler designs speak plain MESI (clean
//! shared data always comes from the home/memory). The kind lives on the
//! topology so presets can name their native protocol; the simulator's
//! `CoherenceProtocol` implementations (in `bounce-sim`) are selected by
//! this tag.

use serde::{Deserialize, Serialize};

/// Which coherence-protocol family to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CoherenceKind {
    /// MESI + Forward: one clean sharer is designated to answer read
    /// misses cache-to-cache (Intel servers; today's default).
    #[default]
    Mesif,
    /// Plain MESI: no Forward state, clean shared reads are served by
    /// the home node / memory (Knights Landing's tile-local flavour).
    Mesi,
    /// MESI + Owned: a dirty line can be shared without writing it back;
    /// the Owned copy keeps supplying readers (AMD-style).
    Moesi,
}

impl CoherenceKind {
    /// Every protocol, in display order.
    pub const ALL: [CoherenceKind; 3] = [
        CoherenceKind::Mesif,
        CoherenceKind::Moesi,
        CoherenceKind::Mesi,
    ];

    /// Lower-case CLI/config label.
    pub fn label(&self) -> &'static str {
        match self {
            CoherenceKind::Mesif => "mesif",
            CoherenceKind::Mesi => "mesi",
            CoherenceKind::Moesi => "moesi",
        }
    }

    /// Parse a CLI/config label (case-insensitive).
    pub fn from_label(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "mesif" => Some(CoherenceKind::Mesif),
            "mesi" => Some(CoherenceKind::Mesi),
            "moesi" => Some(CoherenceKind::Moesi),
            _ => None,
        }
    }
}

impl std::fmt::Display for CoherenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in CoherenceKind::ALL {
            assert_eq!(CoherenceKind::from_label(k.label()), Some(k));
        }
        assert_eq!(
            CoherenceKind::from_label("MESIF"),
            Some(CoherenceKind::Mesif)
        );
        assert_eq!(CoherenceKind::from_label("mosi"), None);
    }

    #[test]
    fn default_is_mesif() {
        assert_eq!(CoherenceKind::default(), CoherenceKind::Mesif);
    }
}
