//! A fluent builder for custom machine topologies, for users modelling
//! their own boxes rather than the two paper presets.
//!
//! ```
//! use bounce_topo::builder::TopologyBuilder;
//!
//! let topo = TopologyBuilder::new("my-epyc-ish-box")
//!     .sockets(2)
//!     .tiles_per_socket(4)
//!     .cores_per_tile(4)
//!     .smt(2)
//!     .ring(2, 4, 90)
//!     .l1_kib(32, 8, 4)
//!     .l2_kib(512, 8, 12)
//!     .l3_mib(32, 16, 40)
//!     .freq_ghz(2.8)
//!     .build()
//!     .unwrap();
//! assert_eq!(topo.num_threads(), 2 * 4 * 4 * 2);
//! topo.validate().unwrap();
//! ```

use crate::machine::{CacheLevel, CacheSharing, Interconnect, MachineTopology, MeshPos};

/// Fluent construction of a [`MachineTopology`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    sockets: usize,
    tiles_per_socket: usize,
    cores_per_tile: usize,
    smt: usize,
    interconnect: Option<Interconnect>,
    caches: Vec<CacheLevel>,
    freq_ghz: f64,
}

impl TopologyBuilder {
    /// Start a builder with 1×1×1×1 defaults at 2 GHz.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder {
            name: name.into(),
            sockets: 1,
            tiles_per_socket: 1,
            cores_per_tile: 1,
            smt: 1,
            interconnect: None,
            caches: Vec::new(),
            freq_ghz: 2.0,
        }
    }

    /// Number of sockets.
    pub fn sockets(mut self, n: usize) -> Self {
        self.sockets = n;
        self
    }

    /// Tiles per socket.
    pub fn tiles_per_socket(mut self, n: usize) -> Self {
        self.tiles_per_socket = n;
        self
    }

    /// Cores per tile.
    pub fn cores_per_tile(mut self, n: usize) -> Self {
        self.cores_per_tile = n;
        self
    }

    /// SMT contexts per core.
    pub fn smt(mut self, n: usize) -> Self {
        self.smt = n;
        self
    }

    /// Ring interconnect: hop latency, stops per socket (must equal
    /// tiles per socket), cross-socket link latency.
    pub fn ring(mut self, hop_cycles: u32, stops_per_socket: u16, cross_link_cycles: u32) -> Self {
        self.interconnect = Some(Interconnect::Ring {
            hop_cycles,
            stops_per_socket,
            cross_link_cycles,
        });
        self
    }

    /// Mesh interconnect: columns × rows (must cover tiles per socket ×
    /// sockets), hop latency.
    pub fn mesh(mut self, cols: u16, rows: u16, hop_cycles: u32) -> Self {
        self.interconnect = Some(Interconnect::Mesh {
            cols,
            rows,
            hop_cycles,
        });
        self
    }

    /// Uniform (flat) interconnect.
    pub fn uniform(mut self, latency_cycles: u32) -> Self {
        self.interconnect = Some(Interconnect::Uniform { latency_cycles });
        self
    }

    fn push_cache(
        mut self,
        name: &str,
        size_bytes: usize,
        assoc: usize,
        hit: u32,
        sharing: CacheSharing,
    ) -> Self {
        self.caches.push(CacheLevel {
            name: name.into(),
            size_bytes,
            line_bytes: 64,
            assoc,
            sharing,
            hit_cycles: hit,
        });
        self
    }

    /// Per-core L1d.
    pub fn l1_kib(self, kib: usize, assoc: usize, hit_cycles: u32) -> Self {
        self.push_cache("L1d", kib * 1024, assoc, hit_cycles, CacheSharing::PerCore)
    }

    /// Per-tile L2.
    pub fn l2_kib(self, kib: usize, assoc: usize, hit_cycles: u32) -> Self {
        self.push_cache("L2", kib * 1024, assoc, hit_cycles, CacheSharing::PerTile)
    }

    /// Per-socket L3.
    pub fn l3_mib(self, mib: usize, assoc: usize, hit_cycles: u32) -> Self {
        self.push_cache(
            "L3",
            mib * 1024 * 1024,
            assoc,
            hit_cycles,
            CacheSharing::PerSocket,
        )
    }

    /// Nominal core frequency.
    pub fn freq_ghz(mut self, ghz: f64) -> Self {
        self.freq_ghz = ghz;
        self
    }

    /// Build and validate. Mesh/ring stop positions are assigned
    /// automatically (tiles row-major on a mesh; ring stops in tile
    /// order per socket).
    pub fn build(self) -> Result<MachineTopology, String> {
        if self.sockets == 0 || self.tiles_per_socket == 0 || self.cores_per_tile == 0 {
            return Err("socket/tile/core counts must be positive".into());
        }
        if self.smt == 0 {
            return Err("smt must be >= 1".into());
        }
        let caches = if self.caches.is_empty() {
            vec![CacheLevel {
                name: "L1d".into(),
                size_bytes: 32 * 1024,
                line_bytes: 64,
                assoc: 8,
                sharing: CacheSharing::PerCore,
                hit_cycles: 4,
            }]
        } else {
            self.caches
        };
        let interconnect = self
            .interconnect
            .unwrap_or(Interconnect::Uniform { latency_cycles: 40 });
        // Geometry consistency checks before construction.
        match &interconnect {
            Interconnect::Ring {
                stops_per_socket, ..
            } => {
                if *stops_per_socket as usize != self.tiles_per_socket {
                    return Err(format!(
                        "ring stops/socket ({stops_per_socket}) must equal tiles/socket ({})",
                        self.tiles_per_socket
                    ));
                }
            }
            Interconnect::Mesh { cols, rows, .. } => {
                let capacity = *cols as usize * *rows as usize;
                let tiles = self.sockets * self.tiles_per_socket;
                if capacity < tiles {
                    return Err(format!("{cols}x{rows} mesh cannot hold {tiles} tiles"));
                }
            }
            Interconnect::Uniform { .. } => {}
        }
        let mut topo = MachineTopology::homogeneous(
            &self.name,
            self.sockets,
            self.tiles_per_socket,
            self.cores_per_tile,
            self.smt,
            caches,
            interconnect,
            self.freq_ghz,
        );
        match &topo.interconnect {
            Interconnect::Mesh { cols, .. } => {
                let cols = *cols;
                for (i, tile) in topo.tiles.iter_mut().enumerate() {
                    tile.mesh_pos = Some(MeshPos {
                        col: (i % cols as usize) as u16,
                        row: (i / cols as usize) as u16,
                    });
                }
            }
            Interconnect::Ring { .. } => {
                let per = self.tiles_per_socket;
                for tile in topo.tiles.iter_mut() {
                    tile.ring_stop = Some((tile.id.0 % per) as u16);
                }
            }
            Interconnect::Uniform { .. } => {}
        }
        topo.validate()?;
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::HwThreadId;
    use crate::Domain;

    #[test]
    fn defaults_build_single_core() {
        let t = TopologyBuilder::new("mini").build().unwrap();
        assert_eq!(t.num_threads(), 1);
        assert_eq!(t.caches.len(), 1, "default L1 added");
    }

    #[test]
    fn full_custom_machine() {
        let t = TopologyBuilder::new("custom")
            .sockets(2)
            .tiles_per_socket(3)
            .cores_per_tile(2)
            .smt(2)
            .ring(2, 3, 100)
            .l1_kib(48, 12, 5)
            .l2_kib(1024, 16, 14)
            .l3_mib(64, 16, 42)
            .freq_ghz(3.0)
            .build()
            .unwrap();
        assert_eq!(t.num_threads(), 2 * 3 * 2 * 2);
        assert_eq!(t.caches.len(), 3);
        assert_eq!(
            t.comm_domain(HwThreadId(0), HwThreadId(t.num_threads() - 1)),
            Domain::CrossSocket
        );
    }

    #[test]
    fn mesh_positions_assigned() {
        let t = TopologyBuilder::new("meshy")
            .tiles_per_socket(6)
            .mesh(3, 2, 2)
            .build()
            .unwrap();
        assert!(t.tiles.iter().all(|tl| tl.mesh_pos.is_some()));
        // Tile 4 at (1, 1) on a 3-wide mesh.
        assert_eq!(t.tiles[4].mesh_pos.unwrap().col, 1);
        assert_eq!(t.tiles[4].mesh_pos.unwrap().row, 1);
    }

    #[test]
    fn ring_stop_mismatch_rejected() {
        let err = TopologyBuilder::new("bad")
            .tiles_per_socket(4)
            .ring(2, 3, 100)
            .build()
            .unwrap_err();
        assert!(err.contains("must equal tiles/socket"), "{err}");
    }

    #[test]
    fn undersized_mesh_rejected() {
        let err = TopologyBuilder::new("bad")
            .tiles_per_socket(9)
            .mesh(2, 2, 2)
            .build()
            .unwrap_err();
        assert!(err.contains("cannot hold"), "{err}");
    }

    #[test]
    fn zero_counts_rejected() {
        assert!(TopologyBuilder::new("z").sockets(0).build().is_err());
        assert!(TopologyBuilder::new("z").smt(0).build().is_err());
    }

    #[test]
    fn built_machine_runs_in_the_simulator() {
        // End-to-end: a custom machine drives the whole stack.
        let t = TopologyBuilder::new("sim-check")
            .tiles_per_socket(2)
            .cores_per_tile(2)
            .uniform(30)
            .build()
            .unwrap();
        assert_eq!(t.num_threads(), 4);
        assert!(t.validate().is_ok());
    }
}
