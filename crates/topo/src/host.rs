//! Best-effort detection of the *host* machine's topology from
//! `/sys/devices/system/cpu` (Linux).
//!
//! The native measurement backend uses this to pin threads on real
//! hardware. Detection is deliberately conservative: anything that cannot
//! be parsed falls back to a flat single-socket description, which is
//! always safe (placement degenerates to linear pinning).

use crate::machine::{
    CacheLevel, CacheSharing, Core, CoreId, HwThread, HwThreadId, Interconnect, MachineTopology,
    Socket, SocketId, Tile, TileId,
};
use crate::protocol::CoherenceKind;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Detect the host topology, falling back to [`flat_fallback`] when sysfs
/// is unavailable or inconsistent.
pub fn detect() -> MachineTopology {
    try_detect().unwrap_or_else(|| flat_fallback(available_cpus().max(1)))
}

/// A flat description: `n` single-thread cores on one socket, uniform
/// interconnect. Used when nothing better is known.
pub fn flat_fallback(n: usize) -> MachineTopology {
    let caches = vec![CacheLevel {
        name: "L1d".into(),
        size_bytes: 32 * 1024,
        line_bytes: 64,
        assoc: 8,
        sharing: CacheSharing::PerCore,
        hit_cycles: 4,
    }];
    MachineTopology::homogeneous(
        &format!("host-flat ({n} cpus)"),
        1,
        1,
        n,
        1,
        caches,
        Interconnect::Uniform { latency_cycles: 40 },
        2.0,
    )
}

/// Number of online CPUs according to the OS.
pub fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn read_usize(path: &Path) -> Option<usize> {
    fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Parse a sysfs cache size string like `"32K"` / `"2M"` into bytes.
fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1024),
        b'M' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    num.parse::<usize>().ok().map(|n| n * mult)
}

/// Detect the data/unified cache hierarchy of cpu0 from sysfs; empty
/// when nothing is readable.
pub fn detect_caches() -> Vec<CacheLevel> {
    let base = Path::new("/sys/devices/system/cpu/cpu0/cache");
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(base) else {
        return out;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        let name = entry.file_name();
        if !name.to_string_lossy().starts_with("index") {
            continue;
        }
        let cache_type = fs::read_to_string(dir.join("type")).unwrap_or_default();
        let cache_type = cache_type.trim();
        if cache_type == "Instruction" {
            continue;
        }
        let Some(level) = read_usize(&dir.join("level")) else {
            continue;
        };
        let Some(size) = fs::read_to_string(dir.join("size"))
            .ok()
            .and_then(|s| parse_size(&s))
        else {
            continue;
        };
        let assoc = read_usize(&dir.join("ways_of_associativity")).unwrap_or(8);
        let line = read_usize(&dir.join("coherency_line_size")).unwrap_or(64);
        // Sharing: shared_cpu_list with >1 cpu on a multi-core host means
        // beyond-core sharing; approximate per-core vs per-socket.
        let shared = fs::read_to_string(dir.join("shared_cpu_list")).unwrap_or_default();
        let beyond_core = shared.trim().contains(',') || shared.trim().contains('-');
        out.push(CacheLevel {
            name: format!("L{level}{}", if cache_type == "Data" { "d" } else { "" }),
            size_bytes: size,
            line_bytes: line,
            assoc: assoc.max(1),
            sharing: if beyond_core {
                CacheSharing::PerSocket
            } else {
                CacheSharing::PerCore
            },
            hit_cycles: match level {
                1 => 4,
                2 => 12,
                _ => 40,
            },
        });
    }
    out.sort_by_key(|c| c.size_bytes);
    out
}

fn try_detect() -> Option<MachineTopology> {
    let base = Path::new("/sys/devices/system/cpu");
    if !base.exists() {
        return None;
    }
    // cpu index -> (physical package id, core id within package)
    let mut cpus: Vec<(usize, usize, usize)> = Vec::new();
    for entry in fs::read_dir(base).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name();
        let name = name.to_str()?;
        let Some(idx) = name
            .strip_prefix("cpu")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let topo_dir = entry.path().join("topology");
        let pkg = read_usize(&topo_dir.join("physical_package_id"))?;
        let core = read_usize(&topo_dir.join("core_id"))?;
        cpus.push((idx, pkg, core));
    }
    if cpus.is_empty() {
        return None;
    }
    cpus.sort_unstable();

    // Group hardware threads by (package, core).
    let mut by_core: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for &(cpu, pkg, core) in &cpus {
        by_core.entry((pkg, core)).or_default().push(cpu);
    }
    let packages: Vec<usize> = {
        let mut p: Vec<usize> = by_core.keys().map(|&(pkg, _)| pkg).collect();
        p.dedup();
        p
    };

    let mut topo = MachineTopology {
        name: format!("host ({} cpus)", cpus.len()),
        threads: vec![
            HwThread {
                id: HwThreadId(0),
                core: CoreId(0),
                smt_index: 0
            };
            cpus.len()
        ],
        cores: Vec::new(),
        tiles: Vec::new(),
        sockets: Vec::new(),
        caches: {
            let detected = detect_caches();
            if detected.is_empty() {
                vec![CacheLevel {
                    name: "L1d".into(),
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    assoc: 8,
                    sharing: CacheSharing::PerCore,
                    hit_cycles: 4,
                }]
            } else {
                detected
            }
        },
        interconnect: Interconnect::Uniform { latency_cycles: 40 },
        freq_ghz: 2.0,
        protocol: CoherenceKind::default(),
    };

    for &pkg in &packages {
        let sid = SocketId(topo.sockets.len());
        let mut tile_ids = Vec::new();
        for ((p, _), thread_cpus) in by_core.iter().filter(|((p, _), _)| *p == pkg) {
            debug_assert_eq!(*p, pkg);
            let tid = TileId(topo.tiles.len());
            let cid = CoreId(topo.cores.len());
            let mut thread_ids = Vec::new();
            for (smt, &cpu) in thread_cpus.iter().enumerate() {
                // Hardware thread ids must be dense 0..n; the OS cpu index
                // is dense for online cpus in practice, but be defensive:
                // map cpu index -> position in the sorted cpu list.
                let pos = cpus.binary_search_by_key(&cpu, |&(c, _, _)| c).ok()?;
                topo.threads[pos] = HwThread {
                    id: HwThreadId(pos),
                    core: cid,
                    smt_index: smt as u8,
                };
                thread_ids.push(HwThreadId(pos));
            }
            topo.cores.push(Core {
                id: cid,
                tile: tid,
                socket: sid,
                threads: thread_ids,
            });
            topo.tiles.push(Tile {
                id: tid,
                socket: sid,
                cores: vec![cid],
                mesh_pos: None,
                ring_stop: None,
            });
            tile_ids.push(tid);
        }
        topo.sockets.push(Socket {
            id: sid,
            tiles: tile_ids,
        });
    }

    topo.validate().ok()?;
    Some(topo)
}

/// Map a detected hardware-thread id back to the OS cpu number it
/// represents. With the detection above these coincide for machines with
/// dense online-cpu numbering, which is the common case; exposed for
/// clarity at call sites.
pub fn os_cpu_of(topo: &MachineTopology, t: HwThreadId) -> usize {
    debug_assert!(t.0 < topo.num_threads());
    t.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_validates() {
        let topo = detect();
        topo.validate().unwrap();
        assert!(topo.num_threads() >= 1);
    }

    #[test]
    fn flat_fallback_shape() {
        let topo = flat_fallback(4);
        topo.validate().unwrap();
        assert_eq!(topo.num_threads(), 4);
        assert_eq!(topo.num_sockets(), 1);
        assert_eq!(topo.smt_ways(), 1);
    }

    #[test]
    fn available_cpus_positive() {
        assert!(available_cpus() >= 1);
    }

    #[test]
    fn parse_size_units() {
        assert_eq!(parse_size("32K"), Some(32 * 1024));
        assert_eq!(parse_size("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_size("1G"), Some(1024 * 1024 * 1024));
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size("junk"), None);
    }

    #[test]
    fn detect_caches_is_sane_when_present() {
        let caches = detect_caches();
        for c in &caches {
            assert!(c.size_bytes > 0);
            assert!(c.line_bytes.is_power_of_two());
            assert!(c.assoc >= 1);
        }
        // Sorted smallest (closest) first.
        for w in caches.windows(2) {
            assert!(w[0].size_bytes <= w[1].size_bytes);
        }
    }

    #[test]
    fn os_cpu_mapping_is_identity() {
        let topo = flat_fallback(3);
        for i in 0..3 {
            assert_eq!(os_cpu_of(&topo, HwThreadId(i)), i);
        }
    }
}
