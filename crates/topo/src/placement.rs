//! Thread-placement policies.
//!
//! Under high contention the mixture of intra-/cross-socket line transfers
//! — and hence throughput — is determined by *where* the contending
//! threads sit. The paper's placement experiment compares pinnings; these
//! policies reproduce the standard ones.

use crate::machine::{HwThreadId, MachineTopology};
use serde::{Deserialize, Serialize};

/// A policy mapping "run N threads" onto concrete hardware threads.
///
/// ```
/// use bounce_topo::{presets, Placement};
///
/// let topo = presets::xeon_e5_2695_v4();
/// // Packed: fill socket 0's physical cores before touching socket 1.
/// let packed = Placement::Packed.assign(&topo, 18);
/// assert!(packed.iter().all(|&t| topo.socket_of(t).0 == 0));
/// // Scattered: alternate sockets.
/// let scattered = Placement::Scattered.assign(&topo, 2);
/// assert_ne!(topo.socket_of(scattered[0]), topo.socket_of(scattered[1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Fill physical cores of socket 0 first (one thread per core), then
    /// socket 1, …, and only then start using second/third/fourth SMT
    /// contexts. The usual "compact, cores-first" pinning.
    Packed,
    /// Round-robin across sockets core by core (socket0/core0,
    /// socket1/core0, socket0/core1, …), SMT contexts last.
    Scattered,
    /// Fill all SMT contexts of a core before moving to the next core
    /// (socket-major). Maximises SMT sharing.
    SmtFirst,
    /// Hardware-thread id order (socket-major, core-major, SMT-minor) —
    /// whatever `homogeneous()` produced. On our presets this equals
    /// SmtFirst; kept separate because host-detected topologies may have
    /// interleaved numbering.
    Linear,
}

impl Placement {
    /// All policies.
    pub const ALL: [Placement; 4] = [
        Placement::Packed,
        Placement::Scattered,
        Placement::SmtFirst,
        Placement::Linear,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Packed => "packed",
            Placement::Scattered => "scattered",
            Placement::SmtFirst => "smt-first",
            Placement::Linear => "linear",
        }
    }

    /// Choose the hardware threads that `n` software threads are pinned
    /// to, in assignment order.
    ///
    /// # Panics
    /// Panics if `n` exceeds the machine's hardware-thread count.
    pub fn assign(&self, topo: &MachineTopology, n: usize) -> Vec<HwThreadId> {
        assert!(
            n <= topo.num_threads(),
            "cannot place {n} threads on {} hardware threads",
            topo.num_threads()
        );
        let order = self.full_order(topo);
        order.into_iter().take(n).collect()
    }

    /// The complete assignment order over every hardware thread.
    pub fn full_order(&self, topo: &MachineTopology) -> Vec<HwThreadId> {
        match self {
            Placement::Linear => (0..topo.num_threads()).map(HwThreadId).collect(),
            Placement::SmtFirst => {
                // Socket-major, core-major, SMT-minor == iterate cores in
                // id order and emit each core's threads together.
                let mut out = Vec::with_capacity(topo.num_threads());
                for core in &topo.cores {
                    out.extend(core.threads.iter().copied());
                }
                out
            }
            Placement::Packed => {
                // SMT level 0 of every core (socket-major), then level 1, …
                let mut out = Vec::with_capacity(topo.num_threads());
                for smt in 0..topo.smt_ways() {
                    for core in &topo.cores {
                        if let Some(&t) = core.threads.get(smt) {
                            out.push(t);
                        }
                    }
                }
                out
            }
            Placement::Scattered => {
                // Round-robin sockets at each SMT level.
                let mut per_socket: Vec<Vec<HwThreadId>> = vec![Vec::new(); topo.num_sockets()];
                for smt in 0..topo.smt_ways() {
                    for core in &topo.cores {
                        if let Some(&t) = core.threads.get(smt) {
                            per_socket[core.socket.0].push(t);
                        }
                    }
                }
                let mut out = Vec::with_capacity(topo.num_threads());
                let mut idx = vec![0usize; per_socket.len()];
                while out.len() < topo.num_threads() {
                    for (s, q) in per_socket.iter().enumerate() {
                        if idx[s] < q.len() {
                            out.push(q[idx[s]]);
                            idx[s] += 1;
                        }
                    }
                }
                out
            }
        }
    }
}

/// A placement's full assignment order, precomputed once, with cheap
/// "first `n` threads" prefix access.
///
/// Sweeps ask for the same placement's prefixes over and over; this is
/// the one shared helper for that pattern (previously copy-pasted as
/// ad-hoc `threads_of` closures at every sweep site).
///
/// ```
/// use bounce_topo::{presets, Placement, PlacementOrder};
///
/// let topo = presets::xeon_e5_2695_v4();
/// let order = PlacementOrder::new(Placement::Packed, &topo);
/// assert_eq!(order.threads_of(4), &order.full()[..4]);
/// ```
#[derive(Debug, Clone)]
pub struct PlacementOrder {
    order: Vec<HwThreadId>,
}

impl PlacementOrder {
    /// Precompute `placement`'s full order over `topo`.
    pub fn new(placement: Placement, topo: &MachineTopology) -> Self {
        PlacementOrder {
            order: placement.full_order(topo),
        }
    }

    /// The first `n` threads of the placement order.
    ///
    /// # Panics
    /// Panics if `n` exceeds the machine's hardware-thread count.
    pub fn threads_of(&self, n: usize) -> &[HwThreadId] {
        assert!(
            n <= self.order.len(),
            "cannot take {n} threads from a {}-thread placement order",
            self.order.len()
        );
        &self.order[..n]
    }

    /// The complete order.
    pub fn full(&self) -> &[HwThreadId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{dual_socket_small, tiny_test_machine, xeon_e5_2695_v4};
    use std::collections::HashSet;

    #[test]
    fn all_policies_produce_permutations() {
        let topo = tiny_test_machine();
        for p in Placement::ALL {
            let order = p.full_order(&topo);
            assert_eq!(order.len(), topo.num_threads(), "{}", p.label());
            let set: HashSet<_> = order.iter().collect();
            assert_eq!(set.len(), topo.num_threads(), "{}", p.label());
        }
    }

    #[test]
    fn packed_uses_distinct_cores_first() {
        let topo = xeon_e5_2695_v4();
        let threads = Placement::Packed.assign(&topo, 36);
        let cores: HashSet<_> = threads.iter().map(|&t| topo.core_of(t).id).collect();
        assert_eq!(cores.len(), 36, "first 36 packed threads on 36 cores");
        // And all on both sockets only after filling socket 0.
        let first18: HashSet<_> = threads[..18].iter().map(|&t| topo.socket_of(t)).collect();
        assert_eq!(first18.len(), 1);
    }

    #[test]
    fn scattered_alternates_sockets() {
        let topo = dual_socket_small();
        let threads = Placement::Scattered.assign(&topo, 4);
        let sockets: Vec<_> = threads.iter().map(|&t| topo.socket_of(t).0).collect();
        assert_eq!(sockets, vec![0, 1, 0, 1]);
    }

    #[test]
    fn smt_first_fills_siblings() {
        let topo = dual_socket_small();
        let threads = Placement::SmtFirst.assign(&topo, 2);
        assert_eq!(
            topo.core_of(threads[0]).id,
            topo.core_of(threads[1]).id,
            "first two smt-first threads share a core"
        );
    }

    #[test]
    #[should_panic]
    fn assign_rejects_oversubscription() {
        let topo = tiny_test_machine();
        let _ = Placement::Packed.assign(&topo, topo.num_threads() + 1);
    }

    #[test]
    fn assign_is_prefix_of_full_order() {
        let topo = tiny_test_machine();
        for p in Placement::ALL {
            let full = p.full_order(&topo);
            for n in 0..=topo.num_threads() {
                assert_eq!(&p.assign(&topo, n)[..], &full[..n]);
            }
        }
    }

    #[test]
    fn placement_order_prefixes_match_assign() {
        let topo = tiny_test_machine();
        for p in Placement::ALL {
            let order = PlacementOrder::new(p, &topo);
            assert_eq!(order.full(), &p.full_order(&topo)[..]);
            for n in 0..=topo.num_threads() {
                assert_eq!(order.threads_of(n), &p.assign(&topo, n)[..]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn placement_order_rejects_oversubscription() {
        let topo = tiny_test_machine();
        let order = PlacementOrder::new(Placement::Packed, &topo);
        let _ = order.threads_of(topo.num_threads() + 1);
    }
}
