//! Machine topology substrate for the atomic-primitive performance study.
//!
//! The ICPP'19 paper ("Modeling the Performance of Atomic Primitives on
//! Modern Architectures") evaluates two machines: a 2-socket Intel Xeon E5
//! (Broadwell class: ring interconnect, inclusive shared L3 with an in-LLC
//! coherence directory, QPI between sockets) and an Intel Xeon Phi
//! Knights Landing (a 2D mesh of tiles, each tile holding two cores that
//! share an L2, with a distributed tag directory instead of a shared LLC).
//!
//! This crate provides:
//!
//! * a uniform description of such machines ([`MachineTopology`]): hardware
//!   threads grouped into cores, cores into tiles, tiles into sockets, plus
//!   the cache hierarchy and the interconnect geometry;
//! * [`presets`] for the two paper testbeds and a couple of auxiliary
//!   configurations;
//! * communication-distance classification between hardware threads
//!   ([`Domain`], [`MachineTopology::comm_domain`]) — the quantity the
//!   cache-line-bouncing model is parameterised on;
//! * thread [`placement`] policies (packed, scattered, SMT-first, ...) used
//!   by the placement experiments.
//!
//! The crate is purely descriptive: latencies in *cycles* for each
//! communication domain live in the simulator configuration
//! (`bounce-sim`) and in the analytic model parameters (`bounce-core`);
//! here we only expose structure (who shares what, how many mesh hops apart
//! two cores sit).

#![warn(missing_docs)]

pub mod builder;
pub mod distance;
pub mod host;
pub mod machine;
pub mod placement;
pub mod presets;
pub mod protocol;
pub mod render;
pub mod route;

pub use builder::TopologyBuilder;
pub use distance::Domain;
pub use machine::{
    CacheLevel, CacheSharing, Core, CoreId, HwThread, HwThreadId, Interconnect, MachineTopology,
    MeshPos, Socket, SocketId, Tile, TileId,
};
pub use placement::{Placement, PlacementOrder};
pub use protocol::CoherenceKind;
pub use route::Link;
