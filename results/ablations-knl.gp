set terminal pngcairo size 900,540 enhanced
set output 'ablations-knl.png'
set title "Ablations (A1-A5) at n=16 — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'ablation'
set key outside right
set grid
set datafile commentschars '#'
plot 'ablations-knl.tsv' using 1:3 skip 1 with linespoints title 'goodput_mops' noenhanced, \
     'ablations-knl.tsv' using 1:4 skip 1 with linespoints title 'fail_rate' noenhanced, \
     'ablations-knl.tsv' using 1:5 skip 1 with linespoints title 'jain' noenhanced
