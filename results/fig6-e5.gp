set terminal pngcairo size 900,540 enhanced
set output 'fig6-e5.png'
set title "Fig 6 (E8): LC throughput vs threads (Mops/s) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig6-e5.tsv' using 1:2 skip 1 with linespoints title 'swap' noenhanced, \
     'fig6-e5.tsv' using 1:3 skip 1 with linespoints title 'tas' noenhanced, \
     'fig6-e5.tsv' using 1:4 skip 1 with linespoints title 'faa' noenhanced, \
     'fig6-e5.tsv' using 1:5 skip 1 with linespoints title 'cas' noenhanced, \
     'fig6-e5.tsv' using 1:6 skip 1 with linespoints title 'ideal_faa' noenhanced
