set terminal pngcairo size 900,540 enhanced
set output 'fig3-knl.png'
set title "Fig 3 (E5): CAS retry loop (window=30cy) vs threads — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig3-knl.tsv' using 1:2 skip 1 with linespoints title 'attempts_mops' noenhanced, \
     'fig3-knl.tsv' using 1:3 skip 1 with linespoints title 'goodput_mops' noenhanced, \
     'fig3-knl.tsv' using 1:4 skip 1 with linespoints title 'fail_rate' noenhanced, \
     'fig3-knl.tsv' using 1:5 skip 1 with linespoints title 'model_fail_rate' noenhanced
