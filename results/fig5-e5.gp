set terminal pngcairo size 900,540 enhanced
set output 'fig5-e5.png'
set title "Fig 5 (E7): energy per op vs threads (HC) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig5-e5.tsv' using 1:2 skip 1 with linespoints title 'faa_nj' noenhanced, \
     'fig5-e5.tsv' using 1:3 skip 1 with linespoints title 'cas_nj' noenhanced, \
     'fig5-e5.tsv' using 1:4 skip 1 with linespoints title 'model_faa_nj' noenhanced, \
     'fig5-e5.tsv' using 1:5 skip 1 with linespoints title 'lc_faa_nj' noenhanced
