set terminal pngcairo size 900,540 enhanced
set output 'sensitivity-knl.png'
set title "Sensitivity (S1): HC elasticities, FAA — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'config'
set key outside right
set grid
set datafile commentschars '#'
plot 'sensitivity-knl.tsv' using 1:3 skip 1 with linespoints title 'd_throughput' noenhanced, \
     'sensitivity-knl.tsv' using 1:4 skip 1 with linespoints title 'd_latency' noenhanced, \
     'sensitivity-knl.tsv' using 1:5 skip 1 with linespoints title 'd_energy' noenhanced
