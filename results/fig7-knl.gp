set terminal pngcairo size 900,540 enhanced
set output 'fig7-knl.png'
set title "Fig 7 (E9): model validation, HC FAA — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing) (fitted smt=49.970 tile=49.970 socket=64.033 cross=158.2)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig7-knl.tsv' using 1:2 skip 1 with linespoints title 'measured_mops' noenhanced, \
     'fig7-knl.tsv' using 1:3 skip 1 with linespoints title 'predicted_mops' noenhanced, \
     'fig7-knl.tsv' using 1:4 skip 1 with linespoints title 'err_pct' noenhanced, \
     'fig7-knl.tsv' using 1:5 skip 1 with linespoints title 'measured_lat_cy' noenhanced, \
     'fig7-knl.tsv' using 1:6 skip 1 with linespoints title 'predicted_lat_cy' noenhanced, \
     'fig7-knl.tsv' using 1:7 skip 1 with linespoints title 'lat_err_pct' noenhanced
