set terminal pngcairo size 900,540 enhanced
set output 'fig13-e5.png'
set title "Fig 13 (E15): contention spreading, n=16 (FAA, Mops/s) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'lines'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig13-e5.tsv' using 1:2 skip 1 with linespoints title 'throughput_mops' noenhanced, \
     'fig13-e5.tsv' using 1:3 skip 1 with linespoints title 'model_mops' noenhanced, \
     'fig13-e5.tsv' using 1:4 skip 1 with linespoints title 'speedup_vs_1' noenhanced
