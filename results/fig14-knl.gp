set terminal pngcairo size 900,540 enhanced
set output 'fig14-knl.png'
set title "Fig 14 (E16): Zipf contention, n=16, 8 lines (FAA, Mops/s) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'theta'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig14-knl.tsv' using 1:2 skip 1 with linespoints title 'throughput_mops' noenhanced, \
     'fig14-knl.tsv' using 1:3 skip 1 with linespoints title 'hot_line_share' noenhanced, \
     'fig14-knl.tsv' using 1:4 skip 1 with linespoints title 'model_bound_mops' noenhanced
