set terminal pngcairo size 900,540 enhanced
set output 'table2.png'
set title "Table 2 (E2): uncontended latency of atomic primitives (cycles)" noenhanced
set xlabel 'machine'
set key outside right
set grid
set datafile commentschars '#'
plot 'table2.tsv' using 1:3 skip 1 with linespoints title 'latency_cycles' noenhanced, \
     'table2.tsv' using 1:4 skip 1 with linespoints title 'throughput_mops' noenhanced
