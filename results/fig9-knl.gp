set terminal pngcairo size 900,540 enhanced
set output 'fig9-knl.png'
set title "Fig 9 (E11): throughput vs local work between ops, n=16 (FAA) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'work_cycles'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig9-knl.tsv' using 1:2 skip 1 with linespoints title 'throughput_mops' noenhanced, \
     'fig9-knl.tsv' using 1:3 skip 1 with linespoints title 'model_mops' noenhanced, \
     'fig9-knl.tsv' using 1:4 skip 1 with linespoints title 'latency_cycles' noenhanced
