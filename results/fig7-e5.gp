set terminal pngcairo size 900,540 enhanced
set output 'fig7-e5.png'
set title "Fig 7 (E9): model validation, HC FAA — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP) (fitted smt=22.998 tile=35.193 socket=41.854 cross=166.7)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig7-e5.tsv' using 1:2 skip 1 with linespoints title 'measured_mops' noenhanced, \
     'fig7-e5.tsv' using 1:3 skip 1 with linespoints title 'predicted_mops' noenhanced, \
     'fig7-e5.tsv' using 1:4 skip 1 with linespoints title 'err_pct' noenhanced, \
     'fig7-e5.tsv' using 1:5 skip 1 with linespoints title 'measured_lat_cy' noenhanced, \
     'fig7-e5.tsv' using 1:6 skip 1 with linespoints title 'predicted_lat_cy' noenhanced, \
     'fig7-e5.tsv' using 1:7 skip 1 with linespoints title 'lat_err_pct' noenhanced
