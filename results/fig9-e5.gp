set terminal pngcairo size 900,540 enhanced
set output 'fig9-e5.png'
set title "Fig 9 (E11): throughput vs local work between ops, n=16 (FAA) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'work_cycles'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig9-e5.tsv' using 1:2 skip 1 with linespoints title 'throughput_mops' noenhanced, \
     'fig9-e5.tsv' using 1:3 skip 1 with linespoints title 'model_mops' noenhanced, \
     'fig9-e5.tsv' using 1:4 skip 1 with linespoints title 'latency_cycles' noenhanced
