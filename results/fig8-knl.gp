set terminal pngcairo size 900,540 enhanced
set output 'fig8-knl.png'
set title "Fig 8 (E10): placement effect at n=32 (HC FAA) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'placement'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig8-knl.tsv' using 1:2 skip 1 with linespoints title 'throughput_mops' noenhanced, \
     'fig8-knl.tsv' using 1:3 skip 1 with linespoints title 'model_mops' noenhanced, \
     'fig8-knl.tsv' using 1:4 skip 1 with linespoints title 'cross_socket_share' noenhanced
