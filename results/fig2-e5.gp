set terminal pngcairo size 900,540 enhanced
set output 'fig2-e5.png'
set title "Fig 2 (E4): HC latency vs threads (cycles) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig2-e5.tsv' using 1:2 skip 1 with linespoints title 'swap' noenhanced, \
     'fig2-e5.tsv' using 1:3 skip 1 with linespoints title 'tas' noenhanced, \
     'fig2-e5.tsv' using 1:4 skip 1 with linespoints title 'faa' noenhanced, \
     'fig2-e5.tsv' using 1:5 skip 1 with linespoints title 'cas' noenhanced, \
     'fig2-e5.tsv' using 1:6 skip 1 with linespoints title 'cas_p99' noenhanced
