set terminal pngcairo size 900,540 enhanced
set output 'fig14-e5.png'
set title "Fig 14 (E16): Zipf contention, n=16, 8 lines (FAA, Mops/s) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'theta'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig14-e5.tsv' using 1:2 skip 1 with linespoints title 'throughput_mops' noenhanced, \
     'fig14-e5.tsv' using 1:3 skip 1 with linespoints title 'hot_line_share' noenhanced, \
     'fig14-e5.tsv' using 1:4 skip 1 with linespoints title 'model_bound_mops' noenhanced
