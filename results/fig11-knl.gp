set terminal pngcairo size 900,540 enhanced
set output 'fig11-knl.png'
set title "Fig 11 (E13): false sharing vs padded (FAA, Mops/s) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig11-knl.tsv' using 1:2 skip 1 with linespoints title 'false_sharing' noenhanced, \
     'fig11-knl.tsv' using 1:3 skip 1 with linespoints title 'padded' noenhanced, \
     'fig11-knl.tsv' using 1:4 skip 1 with linespoints title 'slowdown' noenhanced
