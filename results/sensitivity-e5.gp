set terminal pngcairo size 900,540 enhanced
set output 'sensitivity-e5.png'
set title "Sensitivity (S1): HC elasticities, FAA — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'config'
set key outside right
set grid
set datafile commentschars '#'
plot 'sensitivity-e5.tsv' using 1:3 skip 1 with linespoints title 'd_throughput' noenhanced, \
     'sensitivity-e5.tsv' using 1:4 skip 1 with linespoints title 'd_latency' noenhanced, \
     'sensitivity-e5.tsv' using 1:5 skip 1 with linespoints title 'd_energy' noenhanced
