set terminal pngcairo size 900,540 enhanced
set output 'fig10-knl.png'
set title "Fig 10 (E12): lock handoffs/s vs threads (cs=100cy, noncs=100cy) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig10-knl.tsv' using 1:2 skip 1 with linespoints title 'tas_mops' noenhanced, \
     'fig10-knl.tsv' using 1:3 skip 1 with linespoints title 'ttas_mops' noenhanced, \
     'fig10-knl.tsv' using 1:4 skip 1 with linespoints title 'ticket_mops' noenhanced, \
     'fig10-knl.tsv' using 1:5 skip 1 with linespoints title 'mcs_mops' noenhanced, \
     'fig10-knl.tsv' using 1:6 skip 1 with linespoints title 'model_tas' noenhanced, \
     'fig10-knl.tsv' using 1:7 skip 1 with linespoints title 'model_mcs' noenhanced, \
     'fig10-knl.tsv' using 1:8 skip 1 with linespoints title 'ticket_jain' noenhanced
