set terminal pngcairo size 900,540 enhanced
set output 'table1.png'
set title "Table 1 (E1): machine configurations" noenhanced
set xlabel 'machine'
set key outside right
set grid
set datafile commentschars '#'
plot 'table1.tsv' using 1:2 skip 1 with linespoints title 'sockets' noenhanced, \
     'table1.tsv' using 1:3 skip 1 with linespoints title 'cores' noenhanced, \
     'table1.tsv' using 1:4 skip 1 with linespoints title 'hw_threads' noenhanced, \
     'table1.tsv' using 1:5 skip 1 with linespoints title 'smt' noenhanced, \
     'table1.tsv' using 1:6 skip 1 with linespoints title 'freq_ghz' noenhanced
