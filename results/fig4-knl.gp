set terminal pngcairo size 900,540 enhanced
set output 'fig4-knl.png'
set title "Fig 4 (E6): fairness vs threads (FAA, scattered) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig4-knl.tsv' using 1:2 skip 1 with linespoints title 'fifo' noenhanced, \
     'fig4-knl.tsv' using 1:3 skip 1 with linespoints title 'random' noenhanced, \
     'fig4-knl.tsv' using 1:4 skip 1 with linespoints title 'nearest' noenhanced, \
     'fig4-knl.tsv' using 1:5 skip 1 with linespoints title 'model_nearest' noenhanced
