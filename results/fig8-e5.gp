set terminal pngcairo size 900,540 enhanced
set output 'fig8-e5.png'
set title "Fig 8 (E10): placement effect at n=24 (HC FAA) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'placement'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig8-e5.tsv' using 1:2 skip 1 with linespoints title 'throughput_mops' noenhanced, \
     'fig8-e5.tsv' using 1:3 skip 1 with linespoints title 'model_mops' noenhanced, \
     'fig8-e5.tsv' using 1:4 skip 1 with linespoints title 'cross_socket_share' noenhanced
