set terminal pngcairo size 900,540 enhanced
set output 'fig4-e5.png'
set title "Fig 4 (E6): fairness vs threads (FAA, scattered) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig4-e5.tsv' using 1:2 skip 1 with linespoints title 'fifo' noenhanced, \
     'fig4-e5.tsv' using 1:3 skip 1 with linespoints title 'random' noenhanced, \
     'fig4-e5.tsv' using 1:4 skip 1 with linespoints title 'nearest' noenhanced, \
     'fig4-e5.tsv' using 1:5 skip 1 with linespoints title 'model_nearest' noenhanced
