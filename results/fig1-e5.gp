set terminal pngcairo size 900,540 enhanced
set output 'fig1-e5.png'
set title "Fig 1 (E3): HC throughput vs threads (Mops/s) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig1-e5.tsv' using 1:2 skip 1 with linespoints title 'load' noenhanced, \
     'fig1-e5.tsv' using 1:3 skip 1 with linespoints title 'store' noenhanced, \
     'fig1-e5.tsv' using 1:4 skip 1 with linespoints title 'swap' noenhanced, \
     'fig1-e5.tsv' using 1:5 skip 1 with linespoints title 'tas' noenhanced, \
     'fig1-e5.tsv' using 1:6 skip 1 with linespoints title 'faa' noenhanced, \
     'fig1-e5.tsv' using 1:7 skip 1 with linespoints title 'cas' noenhanced
