set terminal pngcairo size 900,540 enhanced
set output 'fig12-knl.png'
set title "Fig 12 (E14): 1 writer + readers, MESIF vs MESI (total Mops/s) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'readers'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig12-knl.tsv' using 1:2 skip 1 with linespoints title 'mesif' noenhanced, \
     'fig12-knl.tsv' using 1:3 skip 1 with linespoints title 'mesi' noenhanced, \
     'fig12-knl.tsv' using 1:4 skip 1 with linespoints title 'mesif_gain' noenhanced, \
     'fig12-knl.tsv' using 1:5 skip 1 with linespoints title 'model' noenhanced
