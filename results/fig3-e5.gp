set terminal pngcairo size 900,540 enhanced
set output 'fig3-e5.png'
set title "Fig 3 (E5): CAS retry loop (window=30cy) vs threads — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig3-e5.tsv' using 1:2 skip 1 with linespoints title 'attempts_mops' noenhanced, \
     'fig3-e5.tsv' using 1:3 skip 1 with linespoints title 'goodput_mops' noenhanced, \
     'fig3-e5.tsv' using 1:4 skip 1 with linespoints title 'fail_rate' noenhanced, \
     'fig3-e5.tsv' using 1:5 skip 1 with linespoints title 'model_fail_rate' noenhanced
