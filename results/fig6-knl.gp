set terminal pngcairo size 900,540 enhanced
set output 'fig6-knl.png'
set title "Fig 6 (E8): LC throughput vs threads (Mops/s) — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig6-knl.tsv' using 1:2 skip 1 with linespoints title 'swap' noenhanced, \
     'fig6-knl.tsv' using 1:3 skip 1 with linespoints title 'tas' noenhanced, \
     'fig6-knl.tsv' using 1:4 skip 1 with linespoints title 'faa' noenhanced, \
     'fig6-knl.tsv' using 1:5 skip 1 with linespoints title 'cas' noenhanced, \
     'fig6-knl.tsv' using 1:6 skip 1 with linespoints title 'ideal_faa' noenhanced
