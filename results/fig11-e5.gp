set terminal pngcairo size 900,540 enhanced
set output 'fig11-e5.png'
set title "Fig 11 (E13): false sharing vs padded (FAA, Mops/s) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig11-e5.tsv' using 1:2 skip 1 with linespoints title 'false_sharing' noenhanced, \
     'fig11-e5.tsv' using 1:3 skip 1 with linespoints title 'padded' noenhanced, \
     'fig11-e5.tsv' using 1:4 skip 1 with linespoints title 'slowdown' noenhanced
