set terminal pngcairo size 900,540 enhanced
set output 'ablations-e5.png'
set title "Ablations (A1-A5) at n=16 — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'ablation'
set key outside right
set grid
set datafile commentschars '#'
plot 'ablations-e5.tsv' using 1:3 skip 1 with linespoints title 'goodput_mops' noenhanced, \
     'ablations-e5.tsv' using 1:4 skip 1 with linespoints title 'fail_rate' noenhanced, \
     'ablations-e5.tsv' using 1:5 skip 1 with linespoints title 'jain' noenhanced
