set terminal pngcairo size 900,540 enhanced
set output 'latency-hist-knl.png'
set title "Latency distribution (D1): HC FAA log2 buckets, random arbitration — Intel Xeon Phi 7290 (36 tiles x 2C x 4T, Knights Landing)" noenhanced
set xlabel 'n'
set key outside right
set grid
set datafile commentschars '#'
plot 'latency-hist-knl.tsv' using 1:2 skip 1 with linespoints title 'bucket_lo_cycles' noenhanced, \
     'latency-hist-knl.tsv' using 1:3 skip 1 with linespoints title 'bucket_hi_cycles' noenhanced, \
     'latency-hist-knl.tsv' using 1:4 skip 1 with linespoints title 'count' noenhanced, \
     'latency-hist-knl.tsv' using 1:5 skip 1 with linespoints title 'share' noenhanced
