set terminal pngcairo size 900,540 enhanced
set output 'fig12-e5.png'
set title "Fig 12 (E14): 1 writer + readers, MESIF vs MESI (total Mops/s) — Intel Xeon E5-2695 v4 (2S x 18C x 2T, Broadwell-EP)" noenhanced
set xlabel 'readers'
set key outside right
set grid
set datafile commentschars '#'
plot 'fig12-e5.tsv' using 1:2 skip 1 with linespoints title 'mesif' noenhanced, \
     'fig12-e5.tsv' using 1:3 skip 1 with linespoints title 'mesi' noenhanced, \
     'fig12-e5.tsv' using 1:4 skip 1 with linespoints title 'mesif_gain' noenhanced, \
     'fig12-e5.tsv' using 1:5 skip 1 with linespoints title 'model' noenhanced
