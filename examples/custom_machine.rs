//! Model *your* machine: build a custom topology with the fluent
//! builder, give the model a parameter guess, measure on the simulator,
//! fit, and compare — the full workflow a user follows for a box that
//! is neither of the paper's presets.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use bounce::harness::campaign::{default_cfg, fit_and_validate, TrainSplit};
use bounce::model::ModelParams;
use bounce::topo::TopologyBuilder;
use bounce_atomics::Primitive;

fn main() {
    // A hypothetical 4-socket, chiplet-style box: 4 sockets × 4 tiles ×
    // 2 cores × 2 SMT = 64 hardware threads on a per-socket ring.
    let topo = TopologyBuilder::new("hypothetical 4S chiplet box")
        .sockets(4)
        .tiles_per_socket(4)
        .cores_per_tile(2)
        .smt(2)
        .ring(3, 4, 140)
        .l1_kib(32, 8, 4)
        .l2_kib(512, 8, 12)
        .l3_mib(16, 16, 38)
        .freq_ghz(2.4)
        .build()
        .expect("valid custom machine");
    println!("{}", topo.render_ascii());

    // Start from E5-ish guesses with the right frequency.
    let mut initial = ModelParams::e5_default();
    initial.freq_ghz = topo.freq_ghz;

    let ns = [1usize, 2, 4, 8, 16, 32, 48, 64];
    println!("fitting the model against the simulated machine ...\n");
    let campaign = fit_and_validate(
        &topo,
        Primitive::Faa,
        &ns,
        &default_cfg(&topo, 1_500_000),
        &initial,
        TrainSplit::Alternate,
    );
    let t = &campaign.fit.params.transfer;
    println!(
        "fitted: t_smt={:.0} t_tile={:.0} t_socket={:.0} t_cross={:.0} cycles",
        t.smt, t.tile, t.socket, t.cross
    );
    println!(
        "validation: throughput MAPE {:.1}%, latency MAPE {:.1}%\n",
        campaign.throughput_mape(),
        campaign.latency_mape()
    );
    println!(
        "{:>4} {:>14} {:>14} {:>8}",
        "n", "sim Mops/s", "model Mops/s", "err %"
    );
    for row in &campaign.throughput_rows {
        println!(
            "{:>4} {:>14.2} {:>14.2} {:>7.1}%",
            row.n,
            row.measured / 1e6,
            row.predicted / 1e6,
            row.ape_pct()
        );
    }
    println!("\nthe same four-scalar model, fitted in seconds, for a machine");
    println!("that exists nowhere but in the builder call above.");
}
