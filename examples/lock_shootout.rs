//! Lock shootout: the application case study (Fig 10 / E12). Compares
//! TAS, TTAS and ticket locks under growing contention on the simulated
//! Xeon E5 — and, because the same lock implementations are real code,
//! also runs them natively on the host for a correctness-level sanity
//! check.
//!
//! ```text
//! cargo run --release --example lock_shootout
//! ```

use bounce::harness::simrun::{sim_measure, SimRunConfig};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::presets;
use bounce::workloads::apps::run_lock;
use bounce::workloads::{LockShape, Workload};
use bounce_atomics::LockKind;
use std::time::Duration;

fn main() {
    let topo = presets::xeon_e5_2695_v4();
    let mut cfg = SimRunConfig::for_machine(&topo);
    cfg.params.arbitration = ArbitrationPolicy::Fifo;
    cfg.duration_cycles = 4_000_000;

    println!(
        "simulated {}: lock handoffs per second (cs=100cy)\n",
        topo.name
    );
    println!(
        "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "tas Mops", "ttas Mops", "ticket Mops", "mcs Mops", "ticket Jain"
    );
    for n in [2usize, 4, 8, 18, 36] {
        let mut row = Vec::new();
        let mut jain = 1.0;
        for shape in LockShape::ALL {
            let m = sim_measure(
                &topo,
                &Workload::LockHandoff {
                    shape,
                    cs: 100,
                    noncs: 100,
                },
                n,
                &cfg,
            );
            row.push(m.goodput_ops_per_sec / 1e6);
            if shape == LockShape::Ticket {
                jain = m.jain;
            }
        }
        println!(
            "{:>4} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            n, row[0], row[1], row[2], row[3], jain
        );
    }

    println!("\nnative host sanity check (2 threads, 100 ms):");
    for kind in LockKind::ALL {
        let r = run_lock(kind, 2, Duration::from_millis(100), 20);
        println!(
            "  {:<7} {:>12.0} acquisitions/s  (jain {:.3})",
            kind.label(),
            r.throughput(),
            r.jain()
        );
    }
    println!("\nreading the simulated table: the ticket lock scales far better than");
    println!("the TAS family once spinners crowd the lock line, and stays");
    println!("perfectly fair (Jain = 1.0) by construction.");
}
