//! Energy explorer: the paper's fourth currency. Shows the
//! energy-per-operation curves under high and low contention on both
//! simulated machines, against the model's linear-in-N law
//! `E/op ≈ N·P_static/X + e_dyn`.
//!
//! ```text
//! cargo run --release --example energy_explorer
//! ```

use bounce::harness::experiments::Machine;
use bounce::harness::simrun::{sim_measure, SimRunConfig};
use bounce::model::Model;
use bounce::sim::ArbitrationPolicy;
use bounce::topo::Placement;
use bounce::workloads::Workload;
use bounce_atomics::Primitive;

fn main() {
    for machine in Machine::ALL {
        let topo = machine.topo();
        let model = Model::new(topo.clone(), machine.model_params());
        let order = Placement::Packed.full_order(&topo);
        let mut cfg = SimRunConfig::for_machine(&topo);
        cfg.params.arbitration = ArbitrationPolicy::Fifo;

        println!("== {} ==", topo.name);
        println!(
            "{:>4} {:>14} {:>14} {:>14}",
            "n", "HC nJ/op (sim)", "HC nJ/op (model)", "LC nJ/op (sim)"
        );
        let ns: Vec<usize> = match machine {
            Machine::E5 => vec![1, 2, 4, 8, 18, 36],
            Machine::Knl => vec![1, 4, 16, 64, 144],
        };
        for n in ns {
            let hc = sim_measure(
                &topo,
                &Workload::HighContention {
                    prim: Primitive::Faa,
                },
                n,
                &cfg,
            );
            let lc = sim_measure(
                &topo,
                &Workload::LowContention {
                    prim: Primitive::Faa,
                    work: 0,
                },
                n,
                &cfg,
            );
            let pred = model.predict_hc(&order[..n], Primitive::Faa);
            println!(
                "{:>4} {:>14.1} {:>14.1} {:>14.1}",
                n,
                hc.energy_per_op_nj.unwrap_or(0.0),
                pred.energy_per_op_nj,
                lc.energy_per_op_nj.unwrap_or(0.0),
            );
        }
        println!();
    }
    println!("reading the table: under HC every waiting core burns static power");
    println!("while the line serialises — energy/op grows ~linearly with N.");
    println!("Under LC the work parallelises, so energy/op stays flat.");
}
