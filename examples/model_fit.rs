//! Model fitting end-to-end: measure a high-contention sweep on the
//! simulated KNL, recover the transfer costs by Nelder–Mead, and report
//! prediction error on the full sweep (the Fig 7 / E9 workflow).
//!
//! ```text
//! cargo run --release --example model_fit
//! ```

use bounce::harness::simrun::{sim_measure, SimRunConfig};
use bounce::model::fit::{fit_transfer_costs, ScenarioObservation};
use bounce::model::validate::{mape, validated_rows, ValidationMetric};
use bounce::model::{Model, ModelParams, Predictor, Scenario};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::{presets, Placement, PlacementOrder};
use bounce::workloads::Workload;
use bounce_atomics::Primitive;

fn main() {
    let topo = presets::xeon_phi_7290();
    let mut cfg = SimRunConfig::for_machine(&topo);
    cfg.params.arbitration = ArbitrationPolicy::Fifo;
    let order = PlacementOrder::new(Placement::Packed, &topo);
    let w = Workload::HighContention {
        prim: Primitive::Faa,
    };

    // 1. Measure the sweep. Each point's model input is the scenario
    //    the workload itself derives — the same spec the simulator ran.
    println!("measuring HC FAA sweep on simulated {} ...", topo.name);
    let ns = [2usize, 4, 8, 16, 32, 64, 144, 288];
    let measured: Vec<(Scenario, f64)> = ns
        .iter()
        .map(|&n| {
            let m = sim_measure(&topo, &w, n, &cfg);
            let scenario = w
                .scenario(order.threads_of(n))
                .expect("high contention maps to a scenario");
            (scenario, m.throughput_ops_per_sec)
        })
        .collect();

    // 2. Fit the four transfer costs on the even points.
    let train: Vec<ScenarioObservation> = measured
        .iter()
        .step_by(2)
        .map(|(s, x)| ScenarioObservation::new(s.clone(), *x))
        .collect();
    let fit = fit_transfer_costs(&topo, &train, &ModelParams::knl_default());
    println!(
        "\nfitted transfer costs (cycles): smt={:.1} tile={:.1} socket={:.1} cross={:.1}",
        fit.params.transfer.smt,
        fit.params.transfer.tile,
        fit.params.transfer.socket,
        fit.params.transfer.cross
    );
    println!(
        "training residual (rms relative error): {:.2}% over {} points, {} simplex iters",
        fit.rms_rel_error * 100.0,
        train.len(),
        fit.iterations
    );

    // 3. Validate on the whole sweep (including held-out points).
    let model = Model::new(topo.clone(), fit.params.clone());
    let triples: Vec<_> = measured
        .iter()
        .map(|(s, x)| (s.clone(), model.predict(s), *x))
        .collect();
    let rows = validated_rows(&triples, ValidationMetric::Throughput);
    println!(
        "\n{:>5} {:>14} {:>14} {:>8}",
        "n", "measured Mops", "predicted Mops", "err %"
    );
    for row in &rows {
        println!(
            "{:>5} {:>14.2} {:>14.2} {:>7.1}%",
            row.n,
            row.measured / 1e6,
            row.predicted / 1e6,
            row.ape_pct()
        );
    }
    println!("\nMAPE over the sweep: {:.2}%", mape(&rows));
}
