//! Model fitting end-to-end: measure a high-contention sweep on the
//! simulated KNL, recover the transfer costs by Nelder–Mead, and report
//! prediction error on the full sweep (the Fig 7 / E9 workflow).
//!
//! ```text
//! cargo run --release --example model_fit
//! ```

use bounce::harness::simrun::{sim_measure, SimRunConfig};
use bounce::model::fit::{fit_transfer_costs, SweepObservation};
use bounce::model::validate::{mape, ValidationRow};
use bounce::model::{Model, ModelParams};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::{presets, Placement};
use bounce::workloads::Workload;
use bounce_atomics::Primitive;

fn main() {
    let topo = presets::xeon_phi_7290();
    let mut cfg = SimRunConfig::for_machine(&topo);
    cfg.params.arbitration = ArbitrationPolicy::Fifo;
    let order = Placement::Packed.full_order(&topo);

    // 1. Measure the sweep.
    println!("measuring HC FAA sweep on simulated {} ...", topo.name);
    let ns = [2usize, 4, 8, 16, 32, 64, 144, 288];
    let measured: Vec<(usize, f64)> = ns
        .iter()
        .map(|&n| {
            let m = sim_measure(
                &topo,
                &Workload::HighContention {
                    prim: Primitive::Faa,
                },
                n,
                &cfg,
            );
            (n, m.throughput_ops_per_sec)
        })
        .collect();

    // 2. Fit the four transfer costs on the even points.
    let train: Vec<SweepObservation> = measured
        .iter()
        .step_by(2)
        .map(|(n, x)| SweepObservation {
            threads: order[..*n].to_vec(),
            prim: Primitive::Faa,
            throughput_ops_per_sec: *x,
        })
        .collect();
    let fit = fit_transfer_costs(&topo, &train, &ModelParams::knl_default());
    println!(
        "\nfitted transfer costs (cycles): smt={:.1} tile={:.1} socket={:.1} cross={:.1}",
        fit.params.transfer.smt,
        fit.params.transfer.tile,
        fit.params.transfer.socket,
        fit.params.transfer.cross
    );
    println!(
        "training residual (rms relative error): {:.2}% over {} points, {} simplex iters",
        fit.rms_rel_error * 100.0,
        train.len(),
        fit.iterations
    );

    // 3. Validate on the whole sweep (including held-out points).
    let model = Model::new(topo.clone(), fit.params.clone());
    let mut rows = Vec::new();
    println!(
        "\n{:>5} {:>14} {:>14} {:>8}",
        "n", "measured Mops", "predicted Mops", "err %"
    );
    for (n, x) in &measured {
        let pred = model
            .predict_hc(&order[..*n], Primitive::Faa)
            .throughput_ops_per_sec;
        let row = ValidationRow {
            n: *n,
            predicted: pred,
            measured: *x,
        };
        println!(
            "{:>5} {:>14.2} {:>14.2} {:>7.1}%",
            n,
            x / 1e6,
            pred / 1e6,
            row.ape_pct()
        );
        rows.push(row);
    }
    println!("\nMAPE over the sweep: {:.2}%", mape(&rows));
}
