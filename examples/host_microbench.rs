//! Host microbenchmark: Table 2 measured *natively* on whatever machine
//! this runs on — real atomic instructions, `rdtsc` timing, thread
//! pinning when the host allows it. The one part of the study that is
//! meaningful even on a single-CPU container (uncontended costs), and
//! the full paper methodology on a real multicore.
//!
//! ```text
//! cargo run --release --example host_microbench [threads]
//! ```

use bounce::harness::native::{native_measure, NativeConfig};
use bounce::topo::host;
use bounce::workloads::Workload;
use bounce_atomics::Primitive;
use std::time::Duration;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let topo = host::detect();
    let cpus = host::available_cpus();
    println!("host: {} ({} online cpus)\n", topo.name, cpus);
    if n > cpus {
        println!("note: {n} threads on {cpus} cpus — timeslicing, numbers are not contention measurements\n");
    }
    let cfg = NativeConfig {
        duration: Duration::from_millis(300),
        warmup: Duration::from_millis(50),
        pin: n <= cpus,
        latency_sample_shift: 6,
    };

    println!("uncontended-per-thread native cost, {n} thread(s):");
    println!(
        "{:>7} {:>14} {:>16} {:>16} {:>16}",
        "prim", "Mops/s", "mean rdtsc cyc", "p50 cyc", "p99 cyc"
    );
    for prim in Primitive::ALL {
        let w = if n == 1 {
            Workload::HighContention { prim }
        } else {
            Workload::LowContention { prim, work: 0 }
        };
        let m = native_measure(&topo, &w, n, &cfg);
        println!(
            "{:>7} {:>14.2} {:>16.1} {:>16.1} {:>16.1}",
            prim.label(),
            m.throughput_ops_per_sec / 1e6,
            m.mean_latency_cycles,
            m.p50_latency_cycles,
            m.p99_latency_cycles,
        );
    }

    println!("\nCAS retry loop (window 0), {n} thread(s):");
    let m = native_measure(
        &topo,
        &Workload::CasRetryLoop { window: 0, work: 0 },
        n,
        &cfg,
    );
    println!(
        "  attempts {:.2} Mops/s, goodput {:.2} Mops/s, failure rate {:.3}",
        m.cond_attempts_per_sec / 1e6,
        m.goodput_ops_per_sec / 1e6,
        m.failure_rate
    );
    match m.energy_per_op_nj {
        Some(nj) => println!("  RAPL energy: {nj:.1} nJ/op"),
        None => println!("  RAPL energy: not available on this host"),
    }
    println!("\nnote: the mean rdtsc column includes the timing overhead of the");
    println!("rdtsc pair itself (~20-40 reference cycles), so treat it as an");
    println!("upper bound on the instruction cost.");
}
