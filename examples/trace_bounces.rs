//! Trace the bouncing itself: run a short contended FAA on the
//! simulated dual-socket machine with event tracing enabled and print
//! the ownership-transfer chain — the raw phenomenon the model is
//! built on.
//!
//! ```text
//! cargo run --release --example trace_bounces
//! ```

use bounce::sim::trace::{Trace, TraceEvent};
use bounce::sim::{cache::WordAddr, program::builders, Engine, SimConfig, SimParams};
use bounce::topo::{presets, Domain, Placement};
use bounce_atomics::Primitive;

fn main() {
    let topo = presets::dual_socket_small();
    let mut params = SimParams::e5();
    params.home_policy = bounce::sim::HomePolicy::Fixed(0);
    let mut eng = Engine::new(&topo, SimConfig::new(params, 40_000));
    eng.set_trace(Trace::bounded(256));

    let line = WordAddr::of_line(0x4000);
    // Four threads scattered over both sockets.
    for hw in Placement::Scattered.assign(&topo, 4) {
        eng.add_thread(hw, builders::op_loop(Primitive::Faa, line, 0));
    }
    let report = eng.run();
    let trace = eng.take_trace().expect("trace was installed");

    println!("machine: {}", topo.name);
    println!(
        "{} ops completed, {} ownership transfers\n",
        report.total_ops(),
        report.total_transfers()
    );
    println!("last {} trace events:", trace.len().min(40));
    let all: Vec<_> = trace.events().collect();
    for ev in all.iter().skip(all.len().saturating_sub(40)) {
        println!("  {}", ev.render());
    }

    // Summarise the bounce chain by domain.
    let mut by_domain = [0u32; 5];
    for ev in trace.bounces() {
        if let TraceEvent::Bounce { domain, .. } = ev {
            let idx = Domain::ALL.iter().position(|d| d == domain).unwrap();
            by_domain[idx] += 1;
        }
    }
    println!("\nbounces in the trace window, by domain:");
    for (d, count) in Domain::ALL.iter().zip(by_domain) {
        if count > 0 {
            println!("  {:<8} {count}", d.label());
        }
    }
    println!("\neach 'bounce' line is one exclusive-ownership transfer — the");
    println!("unit of cost the whole performance model is denominated in.");
}
