//! Quickstart: predict high-contention FAA throughput on the Xeon E5
//! with the cache-line-bouncing model, then check the prediction against
//! the coherence simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bounce::harness::simrun::{sim_measure, SimRunConfig};
use bounce::model::{Model, ModelParams};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::{presets, Placement};
use bounce::workloads::Workload;
use bounce_atomics::Primitive;

fn main() {
    // 1. The machine: the paper's 2-socket Xeon E5 (simulated).
    let topo = presets::xeon_e5_2695_v4();
    println!("machine: {}\n", topo.name);

    // 2. The model: four transfer costs + per-primitive issue costs.
    let model = Model::new(topo.clone(), ModelParams::e5_default());
    let order = Placement::Packed.full_order(&topo);

    // 3. The simulator stands in for the hardware.
    let mut cfg = SimRunConfig::for_machine(&topo);
    cfg.params.arbitration = ArbitrationPolicy::Fifo;

    println!("high contention, fetch-and-add on one shared line:");
    println!(
        "{:>4} {:>16} {:>16} {:>10}",
        "n", "sim Mops/s", "model Mops/s", "err %"
    );
    for n in [1usize, 2, 4, 8, 18, 36, 72] {
        let meas = sim_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            n,
            &cfg,
        );
        let pred = model.predict_hc(&order[..n], Primitive::Faa);
        let err = (pred.throughput_ops_per_sec - meas.throughput_ops_per_sec).abs()
            / meas.throughput_ops_per_sec
            * 100.0;
        println!(
            "{:>4} {:>16.2} {:>16.2} {:>9.1}%",
            n,
            meas.throughput_ops_per_sec / 1e6,
            pred.throughput_ops_per_sec / 1e6,
            err
        );
    }

    println!("\nthe cliff from n=1 to n=2 is the model's whole story:");
    println!("one thread hits in its L1 (cost c_p); two threads bounce the line");
    println!("(cost E[t] per op, an order of magnitude more).");
}
