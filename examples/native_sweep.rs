//! Native contention sweep: the paper's Fig 1 methodology executed on
//! the *host* with real atomics and pinned threads — the artifact to
//! run when you have an actual multicore (on a 1-CPU container it
//! degrades gracefully to the uncontended point and says so).
//!
//! ```text
//! cargo run --release --example native_sweep [max_threads]
//! ```

use bounce::harness::native::{native_measure, NativeConfig};
use bounce::model::{Model, ModelParams};
use bounce::topo::{host, Placement};
use bounce::workloads::Workload;
use bounce_atomics::Primitive;
use std::time::Duration;

fn main() {
    let topo = host::detect();
    let cpus = host::available_cpus();
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(cpus)
        .min(topo.num_threads());
    println!("host: {} ({cpus} online cpus)", topo.name);
    if cpus < 2 {
        println!("single-CPU host: only the n=1 point carries a performance signal;");
        println!("run this on a multicore to reproduce the contention cliff natively.\n");
    }
    let cfg = NativeConfig {
        duration: Duration::from_millis(250),
        warmup: Duration::from_millis(50),
        pin: max <= cpus,
        latency_sample_shift: 6,
    };
    // A generic model instance for regime advice (host transfer costs
    // unknown — E5 defaults give the right orders of magnitude).
    let advisor = Model::new(topo.clone(), {
        let mut p = ModelParams::e5_default();
        p.freq_ghz = topo.freq_ghz;
        p
    });
    let mut ns = vec![1usize];
    let mut n = 2;
    while n <= max {
        ns.push(n);
        n *= 2;
    }
    if *ns.last().unwrap() != max && max > 1 {
        ns.push(max);
    }
    println!(
        "{:>4} {:>14} {:>14} {:>12} {:>16}",
        "n", "HC FAA Mops/s", "HC CAS Mops/s", "CAS fail", "predicted regime"
    );
    for &n in &ns {
        let faa = native_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            n,
            &cfg,
        );
        let cas = native_measure(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Cas,
            },
            n,
            &cfg,
        );
        let threads = Placement::Packed.assign(&topo, n.min(topo.num_threads()));
        let (regime, _) = advisor.classify(&threads, Primitive::Faa, 0.0);
        let note = if n > cpus { " (oversubscribed)" } else { "" };
        println!(
            "{:>4} {:>14.2} {:>14.2} {:>12.3} {:>16}{}",
            n,
            faa.throughput_ops_per_sec / 1e6,
            cas.throughput_ops_per_sec / 1e6,
            cas.failure_rate,
            regime.label(),
            note,
        );
    }
    println!("\nregime key: issue-bound = no contention; transfer-bound = line");
    println!("bouncing is the bottleneck (spread or batch); demand-bound = the");
    println!("line idles between your ops (threads still help).");
}
