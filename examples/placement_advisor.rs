//! Placement advisor: one of the "algorithmic design decisions" the
//! paper says the model facilitates. Given a machine and a thread
//! count, rank the placement policies by predicted high-contention
//! throughput — then verify the ranking against the simulator.
//!
//! ```text
//! cargo run --release --example placement_advisor [n]
//! ```

use bounce::harness::simrun::{sim_measure_pinned, SimRunConfig};
use bounce::model::{Model, ModelParams};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::{presets, Placement};
use bounce::workloads::Workload;
use bounce_atomics::Primitive;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let topo = presets::xeon_e5_2695_v4();
    let model = Model::new(topo.clone(), ModelParams::e5_default());
    let mut cfg = SimRunConfig::for_machine(&topo);
    cfg.params.arbitration = ArbitrationPolicy::Fifo;

    println!("machine: {}", topo.name);
    println!("advising placement for {n} threads under HC FAA\n");
    println!(
        "{:>10} {:>14} {:>12} {:>14} {:>14}",
        "placement", "E[t] cycles", "cross share", "model Mops/s", "sim Mops/s"
    );

    let mut ranked: Vec<(Placement, f64)> = Vec::new();
    for p in Placement::ALL {
        let hw = p.assign(&topo, n);
        let pred = model.predict_hc(&hw, Primitive::Faa);
        let meas = sim_measure_pinned(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            &hw,
            &cfg,
        );
        println!(
            "{:>10} {:>14.1} {:>12.3} {:>14.2} {:>14.2}",
            p.label(),
            pred.expected_transfer_cycles,
            pred.mixture[4],
            pred.throughput_ops_per_sec / 1e6,
            meas.throughput_ops_per_sec / 1e6,
        );
        ranked.push((p, pred.throughput_ops_per_sec));
    }
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\nmodel's recommendation: pin '{}' — it minimises the share of\n\
         cross-socket line transfers in the ownership rotation.",
        ranked[0].0.label()
    );
}
