//! `bounce` — facade crate for the ICPP'19 reproduction
//! *Modeling the Performance of Atomic Primitives on Modern Architectures*.
//!
//! Re-exports every subsystem under one roof:
//!
//! * [`topo`] — machine topologies (Xeon E5, Xeon Phi KNL presets, host
//!   detection, placement policies);
//! * [`atomics`] — the atomic-primitive layer and the lock / lock-free
//!   structures built on it;
//! * [`sim`] — the discrete-event cache-coherence simulator (the
//!   stand-in for the paper's physical testbeds);
//! * [`model`] — the paper's contribution: the cache-line-bouncing
//!   performance model (latency, throughput, fairness, energy) with
//!   parameter fitting and validation;
//! * [`workloads`] — high-/low-contention workload generators and the
//!   application contexts;
//! * [`harness`] — the experiment harness tying everything together,
//!   including the E1..E12 experiment registry reproducing the paper's
//!   tables and figures.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and per-experiment index.

pub use bounce_atomics as atomics;
pub use bounce_core as model;
pub use bounce_harness as harness;
pub use bounce_sim as sim;
pub use bounce_topo as topo;
pub use bounce_workloads as workloads;
