# Development shortcuts (https://github.com/casey/just)

# Run every test in the workspace, under a hard wall-clock cap so a
# hung simulation (the failure mode the watchdog exists for) can never
# wedge the suite itself.
test:
    timeout 1500 cargo test --workspace

# Lint + docs, as CI runs them.
lint:
    cargo fmt --all -- --check
    cargo clippy --workspace --all-targets -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# The verification layer (see crates/verify): exhaustive model check
# of every coherence protocol, workload-IR lint over every registered
# workload, the determinism + shim/recorder-bypass lint, the schedcheck
# interleaving model check of the real atomics (with its
# ordering-mutation sweep), and the engine-vs-model conformance
# (trace refinement) campaign.
verify-static:
    cargo run --release -p bounce-verify --bin modelcheck
    cargo run --release -p bounce-bench --bin repro -- lint
    cargo run --release -p bounce-verify --bin detlint
    cargo run --release -p bounce-verify --bin schedcheck -- --mutate
    cargo run --release -p bounce-bench --bin repro -- conform --quick

# Regenerate every table and figure into results/ (with gnuplot scripts).
# jobs=0 means one worker per host core; jobs=1 is the serial baseline.
# Output is byte-identical at every job count.
repro jobs="0":
    cargo run --release -p bounce-bench --bin repro -- all --jobs {{jobs}} --timings --out results/ --plots

# Quick repro (CI-speed sweeps).
repro-quick jobs="0":
    cargo run --release -p bounce-bench --bin repro -- all --quick --jobs {{jobs}} --timings --out results-quick/

# All criterion benches.
bench:
    cargo bench --workspace

# Smoke-run the benches without measuring.
bench-check:
    cargo bench --workspace -- --test

# Run every example.
examples:
    for e in quickstart placement_advisor lock_shootout model_fit energy_explorer trace_bounces host_microbench native_sweep custom_machine; do \
        cargo run --release --example $e; done
