//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Covered: the `proptest!` test macro (with `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `prop_oneof!`,
//! `Just`, `any::<T>()`, integer/float range strategies (exclusive and
//! inclusive), tuple strategies, `collection::vec`, `.prop_map`, and
//! char-class string "regex" strategies of the form `"[class]{m,n}"`.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible
//! runs), there is no shrinking, and `.proptest-regressions` files are
//! ignored.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing every test (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test function name so each test gets a distinct but
    /// fully reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default; the workspace overrides where runtime matters.
        ProptestConfig { cases: 256 }
    }
}

/// Error produced by a failed `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError { msg }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A generator of values. Object-safe: the combinator methods are
/// `Self: Sized` so `Box<dyn Strategy<Value = T>>` works (for
/// `prop_oneof!`).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Occasionally emit the exact endpoints, as upstream tends to.
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// `any::<T>()` marker strategy.
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Char-class string strategy: `"[class]{m,n}"` (the only regex shape the
/// workspace uses). Any other pattern is produced verbatim as a literal.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_char_class(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            for c in a..=b {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_string();
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].sample(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`].
    pub trait IntoSizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// `proptest::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, sizes: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = sizes.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.hi - self.lo + 1) as u64;
            let len = self.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?}) — {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec::Vec::new();
        $(options.push(::std::boxed::Box::new($option));)+
        $crate::Union::new(options)
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), __case, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Tag {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f={f}");
        }

        #[test]
        fn combinators_work(
            v in collection::vec(0u64..100, 1..8),
            t in prop_oneof![Just(Tag::A), any::<u64>().prop_map(Tag::B)],
            s in "[a-c_]{2,4}",
            pair in (0u8..4, 10u32..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 100));
            match t {
                Tag::A => {}
                Tag::B(_) => {}
            }
            prop_assert!(s.len() >= 2 && s.len() <= 4, "s={s:?}");
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == '_'));
            prop_assert_ne!(pair.1, 0);
            prop_assert_eq!(pair.1 / 10, 1);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
