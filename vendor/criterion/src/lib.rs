//! Offline shim for the subset of `criterion` this workspace uses:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! warm_up_time, measurement_time, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Behaviour: with `--test` on the command line (as CI's
//! `cargo bench -- --test` passes) every benchmark body runs exactly once
//! with no timing — a compile-and-smoke check. Otherwise each benchmark
//! warms up then measures wall-clock for the configured measurement time
//! and prints `group/id ... ns/iter` lines. No statistics, plots, or
//! baselines — enough to compare hot paths locally.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Wall-clock measurement marker (the only one supported).
    pub struct WallTime;
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
struct GroupConfig {
    warm_up: Duration,
    measure: Duration,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            cfg: GroupConfig::default(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    cfg: GroupConfig,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility; this shim sizes by time, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measure = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            cfg: self.cfg,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
        } else if b.iters > 0 {
            let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!(
                "{}/{}: {} iters in {:.3?} ({:.1} ns/iter)",
                self.name, id, b.iters, b.elapsed, ns
            );
        }
        self
    }

    pub fn finish(self) {}
}

/// Handed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    test_mode: bool,
    cfg: GroupConfig,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let warm = Instant::now();
        while warm.elapsed() < self.cfg.warm_up {
            black_box(routine());
        }
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(routine());
            n += 1;
            // Check the clock in small batches to keep overhead down.
            if n % 32 == 0 && start.elapsed() >= self.cfg.measure {
                break;
            }
        }
        self.iters = n;
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let warm = Instant::now();
        while warm.elapsed() < self.cfg.warm_up {
            black_box(routine(setup()));
        }
        // Setup runs untimed between batches of one, like SmallInput.
        let mut n = 0u64;
        let mut busy = Duration::ZERO;
        while busy < self.cfg.measure {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            busy += t.elapsed();
            n += 1;
        }
        self.iters = n;
        self.elapsed = busy;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
