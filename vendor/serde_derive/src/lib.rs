//! Offline shim for `serde_derive`: emits empty `Serialize`/`Deserialize`
//! impls for the derived type. The serde traits in the companion shim have
//! no methods, so nothing more is required. Written against the bare
//! `proc_macro` API (no syn/quote available offline).
//!
//! Limitations (checked against the workspace): derive targets must be
//! non-generic `struct`/`enum` items without `#[serde(...)]` attributes.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name from a `struct`/`enum` item token stream.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                for next in iter.by_ref() {
                    if let TokenTree::Ident(name) = next {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive shim: could not find struct/enum name in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}
