//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool}`.
//!
//! The generator is SplitMix64 (seed-scrambled), not upstream's ChaCha12.
//! Every consumer in this workspace seeds explicitly and only requires
//! *reproducibility per seed*, never upstream's exact stream, so this is a
//! faithful stand-in for the repo's purposes.

use std::ops::Range;

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble so that adjacent seeds do not yield adjacent states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: z ^ (z >> 31),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
