//! Offline shim for `serde`: the workspace derives `Serialize` and
//! `Deserialize` on plain-data types but never actually serialises
//! anything (tables are written as TSV/markdown by hand), so marker
//! traits with no methods are a faithful stand-in. The derive macros in
//! the companion `serde_derive` shim emit empty impls.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
