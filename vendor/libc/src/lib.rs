//! Offline shim for the tiny slice of `libc` this workspace uses:
//! CPU affinity types and `sched_setaffinity` for thread pinning.

#![allow(non_camel_case_types)]

pub type pid_t = i32;
pub type c_int = i32;
pub type size_t = usize;

/// Matches glibc (and the real `libc` crate, where this is a `c_int`).
pub const CPU_SETSIZE: c_int = 1024;

const MASK_WORDS: usize = (CPU_SETSIZE as usize) / 64;

/// Mirrors glibc's `cpu_set_t`: a 1024-bit mask stored as 16 × u64.
#[repr(C)]
#[derive(Copy, Clone)]
pub struct cpu_set_t {
    bits: [u64; MASK_WORDS],
}

#[allow(non_snake_case)]
pub fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; MASK_WORDS];
}

#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

#[allow(non_snake_case)]
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / 64] & (1u64 << (cpu % 64)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *mut cpu_set_t) -> c_int;
}

#[cfg(not(target_os = "linux"))]
pub unsafe fn sched_setaffinity(_: pid_t, _: size_t, _: *const cpu_set_t) -> c_int {
    0
}

#[cfg(not(target_os = "linux"))]
pub unsafe fn sched_getaffinity(_: pid_t, _: size_t, _: *mut cpu_set_t) -> c_int {
    0
}
