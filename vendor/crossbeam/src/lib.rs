//! Offline shim for the `crossbeam::epoch` surface used by the lock-free
//! stack and queue: `Atomic`/`Owned`/`Shared` tagged-free pointers plus
//! `pin`/`unprotected` guards.
//!
//! The one semantic difference from upstream: `Guard::defer_destroy` is a
//! deliberate **leak** (there is no epoch garbage collector here, and
//! freeing immediately would be a use-after-free for concurrent readers).
//! In-repo usage retires a bounded number of nodes in tests and benches,
//! so the leak is acceptable; see vendor/README.md.

pub mod epoch {
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicPtr, Ordering};

    /// Epoch guard. This shim's guard carries no state: pinning is free
    /// because retired nodes are leaked rather than reclaimed.
    pub struct Guard {
        _priv: (),
    }

    static UNPROTECTED: Guard = Guard { _priv: () };

    /// Pin the current thread (no-op here).
    pub fn pin() -> Guard {
        Guard { _priv: () }
    }

    /// A guard for use when the data structure is not shared.
    ///
    /// # Safety
    /// Caller must guarantee exclusive access, as upstream requires.
    pub unsafe fn unprotected() -> &'static Guard {
        &UNPROTECTED
    }

    impl Guard {
        /// Retire a node. **Leaks** in this shim (see module docs).
        ///
        /// # Safety
        /// Same contract as upstream: the pointer must be unlinked and not
        /// retired twice.
        pub unsafe fn defer_destroy<T>(&self, _shared: Shared<'_, T>) {}

        /// Flush deferred work (no-op here).
        pub fn flush(&self) {}
    }

    /// Pointer types that can be installed into an [`Atomic`].
    pub trait Pointer<T> {
        fn into_ptr(self) -> *mut T;
        /// # Safety
        /// `ptr` must have come from `into_ptr` of the same impl.
        unsafe fn from_ptr(ptr: *mut T) -> Self;
    }

    /// An owned heap allocation, analogous to `Box<T>`.
    pub struct Owned<T> {
        ptr: *mut T,
    }

    impl<T> Owned<T> {
        pub fn new(value: T) -> Self {
            Owned {
                ptr: Box::into_raw(Box::new(value)),
            }
        }

        /// Convert into a [`Shared`], transferring ownership into the
        /// data structure.
        pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
            let ptr = self.into_ptr();
            Shared {
                ptr,
                _marker: PhantomData,
            }
        }
    }

    impl<T> Pointer<T> for Owned<T> {
        fn into_ptr(self) -> *mut T {
            let p = self.ptr;
            std::mem::forget(self);
            p
        }
        unsafe fn from_ptr(ptr: *mut T) -> Self {
            Owned { ptr }
        }
    }

    impl<T> std::ops::Deref for Owned<T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.ptr }
        }
    }

    impl<T> std::ops::DerefMut for Owned<T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.ptr }
        }
    }

    impl<T> Drop for Owned<T> {
        fn drop(&mut self) {
            unsafe {
                drop(Box::from_raw(self.ptr));
            }
        }
    }

    /// A shared pointer valid for the guard's lifetime.
    pub struct Shared<'g, T> {
        ptr: *mut T,
        _marker: PhantomData<&'g T>,
    }

    impl<T> Clone for Shared<'_, T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Shared<'_, T> {}

    impl<T> PartialEq for Shared<'_, T> {
        fn eq(&self, other: &Self) -> bool {
            self.ptr == other.ptr
        }
    }
    impl<T> Eq for Shared<'_, T> {}

    impl<'g, T> Shared<'g, T> {
        pub fn null() -> Self {
            Shared {
                ptr: std::ptr::null_mut(),
                _marker: PhantomData,
            }
        }

        pub fn is_null(&self) -> bool {
            self.ptr.is_null()
        }

        /// # Safety
        /// The pointer must be non-null and valid.
        pub unsafe fn deref(&self) -> &'g T {
            &*self.ptr
        }

        /// # Safety
        /// The pointer must be valid (may be null).
        pub unsafe fn as_ref(&self) -> Option<&'g T> {
            self.ptr.as_ref()
        }

        /// Reclaim ownership.
        ///
        /// # Safety
        /// Caller must have exclusive access to the pointee.
        pub unsafe fn into_owned(self) -> Owned<T> {
            Owned { ptr: self.ptr }
        }
    }

    impl<T> Pointer<T> for Shared<'_, T> {
        fn into_ptr(self) -> *mut T {
            self.ptr
        }
        unsafe fn from_ptr(ptr: *mut T) -> Self {
            Shared {
                ptr,
                _marker: PhantomData,
            }
        }
    }

    /// Error returned by a failed [`Atomic::compare_exchange`], giving the
    /// observed value back along with the not-installed new pointer.
    pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
        pub current: Shared<'g, T>,
        pub new: P,
    }

    /// An atomic pointer into a lock-free structure.
    pub struct Atomic<T> {
        inner: AtomicPtr<T>,
    }

    impl<T> Atomic<T> {
        pub fn null() -> Self {
            Atomic {
                inner: AtomicPtr::new(std::ptr::null_mut()),
            }
        }

        pub fn new(value: T) -> Self {
            Atomic {
                inner: AtomicPtr::new(Box::into_raw(Box::new(value))),
            }
        }

        pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
            Shared {
                ptr: self.inner.load(ord),
                _marker: PhantomData,
            }
        }

        pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
            self.inner.store(new.into_ptr(), ord);
        }

        pub fn compare_exchange<'g, P: Pointer<T>>(
            &self,
            current: Shared<'_, T>,
            new: P,
            success: Ordering,
            failure: Ordering,
            _guard: &'g Guard,
        ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
            let new_ptr = new.into_ptr();
            match self
                .inner
                .compare_exchange(current.ptr, new_ptr, success, failure)
            {
                Ok(_) => Ok(Shared {
                    ptr: new_ptr,
                    _marker: PhantomData,
                }),
                Err(observed) => Err(CompareExchangeError {
                    current: Shared {
                        ptr: observed,
                        _marker: PhantomData,
                    },
                    // SAFETY: new_ptr came from `new.into_ptr()` above and
                    // was not installed, so ownership returns to the caller.
                    new: unsafe { P::from_ptr(new_ptr) },
                }),
            }
        }
    }

    impl<T> From<Shared<'_, T>> for Atomic<T> {
        fn from(shared: Shared<'_, T>) -> Self {
            Atomic {
                inner: AtomicPtr::new(shared.ptr),
            }
        }
    }

    // SAFETY: same contracts as upstream crossbeam-epoch — the pointers
    // are only dereferenced under the usual epoch/exclusivity rules, which
    // callers uphold via the unsafe accessor methods.
    unsafe impl<T: Send + Sync> Send for Atomic<T> {}
    unsafe impl<T: Send + Sync> Sync for Atomic<T> {}
    unsafe impl<T: Send> Send for Owned<T> {}
    unsafe impl<T: Send + Sync> Send for Shared<'_, T> {}
    unsafe impl<T: Send + Sync> Sync for Shared<'_, T> {}
}
