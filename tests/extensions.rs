//! Integration tests for the extension experiments: queue locks in the
//! simulator, contention spreading, false sharing, and the mixed
//! read/write protocol effect.

use bounce::harness::simrun::{sim_measure, SimRunConfig};
use bounce::model::{Model, ModelParams};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::{presets, Placement};
use bounce::workloads::{LockShape, Workload};
use bounce_atomics::Primitive;

fn fifo_cfg(topo: &bounce::topo::MachineTopology) -> SimRunConfig {
    let mut cfg = SimRunConfig::for_machine(topo);
    cfg.params.arbitration = ArbitrationPolicy::Fifo;
    cfg.duration_cycles = 800_000;
    cfg
}

/// Queue locks scale where the TAS family collapses (Fig 10 shape).
#[test]
fn queue_locks_beat_tas_at_scale() {
    let topo = presets::xeon_e5_2695_v4();
    let cfg = fifo_cfg(&topo);
    let handoffs = |shape: LockShape, n: usize| -> f64 {
        let m = sim_measure(
            &topo,
            &Workload::LockHandoff {
                shape,
                cs: 100,
                noncs: 100,
            },
            n,
            &cfg,
        );
        match shape {
            LockShape::Ticket => m.goodput_ops_per_sec / 2.0,
            LockShape::Mcs => {
                let total: u64 = m.per_thread_ops.iter().sum();
                let swaps = m.ops_by_prim.map_or(0, |o| o[2]); // Swap index
                if total == 0 {
                    0.0
                } else {
                    m.throughput_ops_per_sec * swaps as f64 / total as f64
                }
            }
            _ => m.goodput_ops_per_sec,
        }
    };
    let n = 36;
    let tas = handoffs(LockShape::Tas, n);
    let ticket = handoffs(LockShape::Ticket, n);
    let mcs = handoffs(LockShape::Mcs, n);
    assert!(
        ticket > 2.0 * tas,
        "ticket {ticket:.0} should dominate TAS {tas:.0} at n={n}"
    );
    assert!(
        mcs > 2.0 * tas,
        "MCS {mcs:.0} should dominate TAS {tas:.0} at n={n}"
    );
}

/// Striping multiplies throughput and the model tracks it (Fig 13).
#[test]
fn striping_multiplies_throughput_and_model_tracks() {
    let topo = presets::xeon_e5_2695_v4();
    let cfg = fifo_cfg(&topo);
    let model = Model::new(topo.clone(), ModelParams::e5_default());
    let n = 16;
    let order = Placement::Packed.assign(&topo, n);
    let measure = |lines: usize| {
        sim_measure(
            &topo,
            &Workload::MultiLine {
                prim: Primitive::Faa,
                lines,
            },
            n,
            &cfg,
        )
        .throughput_ops_per_sec
    };
    let x1 = measure(1);
    let x4 = measure(4);
    assert!(x4 > 3.0 * x1, "4 stripes: {x4:.0} vs {x1:.0}");
    let pred4 = model
        .predict_multiline(&order, Primitive::Faa, 4)
        .throughput_ops_per_sec;
    let err = (pred4 - x4).abs() / x4;
    assert!(err < 0.25, "model striping error {:.1}%", err * 100.0);
}

/// False sharing behaves like HC; padding restores LC (Fig 11).
#[test]
fn false_sharing_collapse_and_padding_fix() {
    let topo = presets::xeon_phi_7290();
    let cfg = fifo_cfg(&topo);
    let n = 8;
    let fs = sim_measure(
        &topo,
        &Workload::FalseSharing {
            prim: Primitive::Faa,
        },
        n,
        &cfg,
    );
    let hc = sim_measure(
        &topo,
        &Workload::HighContention {
            prim: Primitive::Faa,
        },
        n,
        &cfg,
    );
    let padded = sim_measure(
        &topo,
        &Workload::LowContention {
            prim: Primitive::Faa,
            work: 0,
        },
        n,
        &cfg,
    );
    // False sharing ≈ true sharing (within 20%), padding >> both.
    let r = fs.throughput_ops_per_sec / hc.throughput_ops_per_sec;
    assert!((0.8..1.25).contains(&r), "fs/hc ratio {r:.2}");
    assert!(padded.throughput_ops_per_sec > 5.0 * fs.throughput_ops_per_sec);
}

/// The seqlock's promise natively: concurrent readers never observe a
/// torn pair even while a writer churns (the structure the read-mostly
/// experiment motivates).
#[test]
fn seqlock_no_torn_reads_under_writer_churn() {
    use bounce_atomics::SeqLock;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let sl = Arc::new(SeqLock::new([0u64, 0]));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let sl = Arc::clone(&sl);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (v, _) = sl.read();
                assert_eq!(v[1], v[0].wrapping_mul(3), "torn: {v:?}");
                checked += 1;
            }
            checked
        })
    };
    for i in 1..=20_000u64 {
        sl.write(|d| {
            d[0] = i;
            d[1] = i.wrapping_mul(3);
        });
    }
    stop.store(true, Ordering::SeqCst);
    assert!(reader.join().unwrap() > 0);
}
