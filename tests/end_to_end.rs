//! Cross-crate integration tests: the full pipeline from workload spec
//! through simulator to model validation, mirroring how the paper's
//! claims are checked.

use bounce::harness::experiments::{self, ExpCtx, Machine};
use bounce::harness::simrun::{sim_measure, sim_measure_pinned, SimRunConfig};
use bounce::model::fit::{fit_transfer_costs, ScenarioObservation};
use bounce::model::validate::{mape, ValidationRow};
use bounce::model::{Model, ModelParams, Scenario};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::{presets, Placement};
use bounce::workloads::Workload;
use bounce_atomics::Primitive;

fn fifo_cfg(topo: &bounce::topo::MachineTopology) -> SimRunConfig {
    let mut cfg = SimRunConfig::for_machine(topo);
    cfg.params.arbitration = ArbitrationPolicy::Fifo;
    cfg.duration_cycles = 600_000;
    cfg
}

/// The headline claim: the fitted model predicts HC throughput across a
/// sweep with small error (the paper reports close agreement; we accept
/// <= 20% MAPE on the E5 stand-in).
#[test]
fn fitted_model_predicts_hc_sweep() {
    let topo = presets::xeon_e5_2695_v4();
    let cfg = fifo_cfg(&topo);
    let order = Placement::Packed.full_order(&topo);
    let ns = [2usize, 4, 8, 18, 36, 72];
    let measured: Vec<(usize, f64)> = ns
        .iter()
        .map(|&n| {
            let m = sim_measure(
                &topo,
                &Workload::HighContention {
                    prim: Primitive::Faa,
                },
                n,
                &cfg,
            );
            (n, m.throughput_ops_per_sec)
        })
        .collect();
    let obs: Vec<ScenarioObservation> = measured
        .iter()
        .map(|(n, x)| {
            ScenarioObservation::new(Scenario::high_contention(&order[..*n], Primitive::Faa), *x)
        })
        .collect();
    let fit = fit_transfer_costs(&topo, &obs, &ModelParams::e5_default());
    let model = Model::new(topo.clone(), fit.params);
    let rows: Vec<ValidationRow> = measured
        .iter()
        .map(|(n, x)| ValidationRow {
            n: *n,
            predicted: model
                .predict_hc(&order[..*n], Primitive::Faa)
                .throughput_ops_per_sec,
            measured: *x,
        })
        .collect();
    let err = mape(&rows);
    assert!(err <= 20.0, "fitted-model MAPE {err:.1}% exceeds 20%");
}

/// The paper's qualitative rankings hold end to end on the E5 stand-in.
#[test]
fn paper_shape_rankings_hold() {
    let topo = presets::xeon_e5_2695_v4();
    let cfg = fifo_cfg(&topo);
    let hc = |prim, n| {
        sim_measure(&topo, &Workload::HighContention { prim }, n, &cfg).throughput_ops_per_sec
    };
    // (1) One thread beats many under HC.
    assert!(hc(Primitive::Faa, 1) > 1.2 * hc(Primitive::Faa, 8));
    // (2) Loads scale; RMWs don't.
    assert!(hc(Primitive::Load, 8) > 4.0 * hc(Primitive::Load, 1) * 0.9);
    // (3) Crossing the socket boundary costs throughput.
    assert!(hc(Primitive::Faa, 18) > 1.3 * hc(Primitive::Faa, 36));
    // (4) LC scales linearly where HC is flat.
    let lc = |n| {
        sim_measure(
            &topo,
            &Workload::LowContention {
                prim: Primitive::Faa,
                work: 0,
            },
            n,
            &cfg,
        )
        .throughput_ops_per_sec
    };
    let r = lc(8) / lc(1);
    assert!(r > 6.0, "LC scaling {r:.1}x");
}

/// Placement ranking: the model's best placement is also the
/// simulator's best (the design-decision use case from the abstract).
#[test]
fn model_placement_ranking_matches_sim() {
    let topo = presets::xeon_e5_2695_v4();
    let cfg = fifo_cfg(&topo);
    let model = Model::new(topo.clone(), ModelParams::e5_default());
    let n = 24;
    let mut sim_best = (Placement::Linear, 0.0f64);
    let mut model_best = (Placement::Linear, 0.0f64);
    for p in Placement::ALL {
        let hw = p.assign(&topo, n);
        let meas = sim_measure_pinned(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            &hw,
            &cfg,
        );
        let pred = model.predict_hc(&hw, Primitive::Faa);
        if meas.throughput_ops_per_sec > sim_best.1 {
            sim_best = (p, meas.throughput_ops_per_sec);
        }
        if pred.throughput_ops_per_sec > model_best.1 {
            model_best = (p, pred.throughput_ops_per_sec);
        }
    }
    // SmtFirst and Linear coincide on the presets; accept either when
    // they tie.
    let same = sim_best.0 == model_best.0
        || (matches!(sim_best.0, Placement::SmtFirst | Placement::Linear)
            && matches!(model_best.0, Placement::SmtFirst | Placement::Linear));
    assert!(
        same,
        "model recommends {:?} but sim prefers {:?}",
        model_best.0, sim_best.0
    );
}

/// CAS retry loops waste work under contention: goodput < throughput,
/// and failure rate grows with n — on both machines.
#[test]
fn cas_waste_grows_with_contention() {
    for machine in Machine::ALL {
        let topo = machine.topo();
        let cfg = fifo_cfg(&topo);
        let w = Workload::CasRetryLoop {
            window: 30,
            work: 0,
        };
        let m2 = sim_measure(&topo, &w, 2, &cfg);
        let m8 = sim_measure(&topo, &w, 8, &cfg);
        assert!(
            m8.failure_rate >= m2.failure_rate,
            "{}: failure rate should grow: {} vs {}",
            machine.label(),
            m2.failure_rate,
            m8.failure_rate
        );
        assert!(m8.goodput_ops_per_sec <= m8.throughput_ops_per_sec);
    }
}

/// The experiment registry produces every table with sane content in
/// quick mode (the repro binary's path).
#[test]
fn experiment_registry_complete() {
    let all = experiments::all_experiments(ExpCtx::quick());
    assert_eq!(all.len(), 42, "2 tables + 20 experiments x 2 machines");
    for (id, r) in &all {
        let t = r.as_ref().unwrap_or_else(|e| panic!("{id} failed: {e}"));
        assert!(!t.rows.is_empty(), "{id} empty");
        assert!(!t.headers.is_empty(), "{id} lacks headers");
        for row in &t.rows {
            assert_eq!(row.len(), t.headers.len(), "{id} ragged row");
        }
        // TSV and markdown render without panicking.
        assert!(t.to_tsv().contains('\t'));
        assert!(t.to_markdown().contains('|'));
    }
}

/// Native and simulated backends agree on the *structure* of results
/// for a single-thread workload (the only configuration whose native
/// numbers mean something on a 1-CPU host).
#[test]
fn native_and_sim_agree_on_single_thread_structure() {
    use bounce::harness::native::{native_measure, NativeConfig};
    let host = bounce::topo::host::detect();
    let w = Workload::HighContention {
        prim: Primitive::Faa,
    };
    let native = native_measure(&host, &w, 1, &NativeConfig::quick());
    assert_eq!(native.failure_rate, 0.0);
    assert!(native.throughput_ops_per_sec > 0.0);

    let topo = presets::xeon_e5_2695_v4();
    let sim = sim_measure(&topo, &w, 1, &fifo_cfg(&topo));
    assert_eq!(sim.failure_rate, 0.0);
    // Both see an uncontended RMW cost within the same order of
    // magnitude (tens of cycles -> tens of millions ops/s per GHz).
    assert!(sim.throughput_ops_per_sec > 1e7);
}

/// Energy: under HC the energy/op grows with n (waiting cores burn
/// power); under LC it stays flat. Both machines.
#[test]
fn energy_shapes_hold() {
    for machine in Machine::ALL {
        let topo = machine.topo();
        let cfg = fifo_cfg(&topo);
        let hc = |n| {
            sim_measure(
                &topo,
                &Workload::HighContention {
                    prim: Primitive::Faa,
                },
                n,
                &cfg,
            )
            .energy_per_op_nj
            .unwrap()
        };
        assert!(
            hc(8) > 1.5 * hc(2),
            "{}: HC energy/op must grow with n",
            machine.label()
        );
        let lc = |n| {
            sim_measure(
                &topo,
                &Workload::LowContention {
                    prim: Primitive::Faa,
                    work: 0,
                },
                n,
                &cfg,
            )
            .energy_per_op_nj
            .unwrap()
        };
        let ratio = lc(8) / lc(2);
        assert!(
            (0.5..2.0).contains(&ratio),
            "{}: LC energy/op should be ~flat, got {ratio:.2}x",
            machine.label()
        );
    }
}
