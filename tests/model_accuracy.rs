//! Regression net for the model's headline accuracy results: these pin
//! the agreements EXPERIMENTS.md reports so a simulator or model change
//! that silently degrades them fails CI.

use bounce::harness::simrun::{sim_measure, sim_measure_pinned, SimRunConfig};
use bounce::model::fairness::{predict_jain, ArbitrationKind};
use bounce::model::{Model, ModelParams};
use bounce::sim::ArbitrationPolicy;
use bounce::topo::{presets, Placement};
use bounce::workloads::Workload;
use bounce_atomics::Primitive;

fn cfg(topo: &bounce::topo::MachineTopology, arb: ArbitrationPolicy) -> SimRunConfig {
    let mut cfg = SimRunConfig::for_machine(topo);
    cfg.params.arbitration = arb;
    cfg.duration_cycles = 1_000_000;
    cfg
}

/// Fig 4's headline: the arbitration abstraction predicts nearest-first
/// fairness almost exactly through the physical-core range.
#[test]
fn fairness_prediction_matches_sim_closely() {
    let topo = presets::xeon_e5_2695_v4();
    let order = Placement::Scattered.full_order(&topo);
    for n in [4usize, 8, 12, 24] {
        let meas = sim_measure_pinned(
            &topo,
            &Workload::HighContention {
                prim: Primitive::Faa,
            },
            &order[..n],
            &cfg(&topo, ArbitrationPolicy::NearestFirst),
        );
        let pred = predict_jain(&topo, &order[..n], ArbitrationKind::NearestFirst);
        assert!(
            (meas.jain - pred).abs() < 0.03,
            "n={n}: sim {:.3} vs model {:.3}",
            meas.jain,
            pred
        );
    }
}

/// Fig 10's headline: the TAS handoff formula f/(cs + n·E[t]) tracks
/// the simulator within ~15% across the sweep.
#[test]
fn tas_lock_handoff_formula_tracks_sim() {
    let topo = presets::xeon_e5_2695_v4();
    let model = Model::new(topo.clone(), ModelParams::e5_default());
    let mut c = cfg(&topo, ArbitrationPolicy::Fifo);
    c.duration_cycles = 2_000_000;
    for n in [2usize, 8, 36] {
        let meas = sim_measure(
            &topo,
            &Workload::LockHandoff {
                shape: bounce::workloads::LockShape::Tas,
                cs: 100,
                noncs: 100,
            },
            n,
            &c,
        );
        let threads = Placement::Packed.assign(&topo, n);
        let pred_tas = model
            .predict_lock_handoffs(&threads, 100.0)
            .get(bounce::workloads::LockShape::Tas);
        let rel = (pred_tas - meas.goodput_ops_per_sec).abs() / meas.goodput_ops_per_sec;
        assert!(
            rel < 0.15,
            "n={n}: model {:.2}M vs sim {:.2}M ({:.0}% off)",
            pred_tas / 1e6,
            meas.goodput_ops_per_sec / 1e6,
            rel * 100.0
        );
    }
}

/// Fig 14's headline: the hot-line bound tracks Zipf throughput, and
/// throughput declines monotonically with skew.
#[test]
fn zipf_throughput_declines_and_bound_holds() {
    let topo = presets::xeon_e5_2695_v4();
    let model = Model::new(topo.clone(), ModelParams::e5_default());
    let c = cfg(&topo, ArbitrationPolicy::Fifo);
    let n = 16;
    let lines = 8;
    let order = Placement::Packed.assign(&topo, n);
    let mut last = f64::INFINITY;
    for theta in [0.0f64, 0.8, 1.6] {
        let meas = sim_measure(
            &topo,
            &Workload::Zipf {
                prim: Primitive::Faa,
                lines,
                theta,
                seed: 7,
            },
            n,
            &c,
        );
        let x = meas.throughput_ops_per_sec;
        assert!(x < last * 1.05, "θ={theta}: throughput must not rise");
        last = x;
        if theta > 0.0 {
            let p0 = bounce::workloads::Zipf::new(lines, theta).pmf(0);
            let hc = model
                .predict_hc(&order, Primitive::Faa)
                .throughput_ops_per_sec;
            let bound = hc / p0;
            let rel = (bound - x).abs() / x;
            assert!(
                rel < 0.25,
                "θ={theta}: bound {:.1}M vs sim {:.1}M",
                bound / 1e6,
                x / 1e6
            );
        }
    }
}

/// Fig 13's headline: striping speedup within 25% of the striped-model
/// prediction at every point.
#[test]
fn striping_model_tracks_every_point() {
    let topo = presets::xeon_phi_7290();
    let model = Model::new(topo.clone(), ModelParams::knl_default());
    let c = cfg(&topo, ArbitrationPolicy::Fifo);
    let n = 16;
    let order = Placement::Packed.assign(&topo, n);
    for lines in [1usize, 2, 4, 8] {
        let meas = sim_measure(
            &topo,
            &Workload::MultiLine {
                prim: Primitive::Faa,
                lines,
            },
            n,
            &c,
        );
        let pred = model
            .predict_multiline(&order, Primitive::Faa, lines)
            .throughput_ops_per_sec;
        let rel = (pred - meas.throughput_ops_per_sec).abs() / meas.throughput_ops_per_sec;
        assert!(
            rel < 0.35,
            "lines={lines}: model {:.1}M vs sim {:.1}M",
            pred / 1e6,
            meas.throughput_ops_per_sec / 1e6
        );
    }
}
