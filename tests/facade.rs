//! The facade crate re-exports every subsystem under stable paths — a
//! downstream user writes `bounce::model::Model`, `bounce::sim::Engine`
//! etc. These tests pin that surface.

#[test]
fn facade_paths_resolve() {
    // topo
    let topo = bounce::topo::presets::xeon_e5_2695_v4();
    assert_eq!(topo.num_threads(), 72);
    let _ = bounce::topo::Placement::Packed.assign(&topo, 4);
    // atomics
    let _ = bounce::atomics::Primitive::Cas;
    let _ = bounce::atomics::CachePadded::new(0u64);
    // model
    let m = bounce::model::Model::new(topo.clone(), bounce::model::ModelParams::e5_default());
    assert!(m.params().freq_ghz > 0.0);
    // sim
    let params = bounce::sim::SimParams::e5();
    params.validate().unwrap();
    // workloads
    let w = bounce::workloads::Workload::HighContention {
        prim: bounce::atomics::Primitive::Faa,
    };
    assert!(w.is_high_contention());
    // harness
    let t = bounce::harness::Table::new("t", &["a"]);
    assert!(t.rows.is_empty());
}

#[test]
fn workload_to_sim_through_facade() {
    use bounce::sim::{Engine, SimConfig, SimParams};
    use bounce::topo::{presets, HwThreadId};
    let topo = presets::tiny_test_machine();
    let w = bounce::workloads::Workload::HighContention {
        prim: bounce::atomics::Primitive::Faa,
    };
    let mut eng = Engine::new(&topo, SimConfig::new(SimParams::e5(), 100_000));
    for (i, p) in w.sim_programs(2).into_iter().enumerate() {
        eng.add_thread(HwThreadId(i * 2), p);
    }
    let report = eng.run();
    assert!(report.total_ops() > 0);
}
